//! Experiment harness for the DAC '95 reproduction.
//!
//! One binary per experiment (see `src/bin/`), each regenerating one figure
//! or quantitative claim from the paper:
//!
//! | Binary | Id | Reproduces |
//! |---|---|---|
//! | `fig1_speedup` | F1 | Figure 1: 8-processor speedup vs circuit size per discipline |
//! | `exp_scaling` | E1 | Briner-style speedup vs processor count |
//! | `exp_partitioning` | E2 | §III partitioning algorithm comparison |
//! | `exp_granularity` | E3 | timing granularity: synchronous vs optimistic |
//! | `exp_cancellation` | E4 | lazy vs aggressive cancellation |
//! | `exp_state_saving` | E5 | copy vs incremental state saving |
//! | `exp_activity` | E6 | oblivious vs event-driven crossover |
//! | `exp_granularity_lp` | E7 | LP granularity sweep |
//! | `exp_presim` | E8 | pre-simulation activity weighting |
//! | `exp_barrier` | E9 | synchronous barrier-cost scaling |
//! | `exp_nullmsg` | E10 | null-message overhead vs lookahead |
//! | `exp_threaded` | E11 | wall-clock throughput of the threaded kernels on the runtime fabric |
//! | `exp_bitparallel` | E12 | §II bit parallelism: packed 64-lane throughput vs scalar kernels |
//! | `exp_faults` | E13 | fault-injection campaign: recovery transparency and fail-fast overhead |
//! | `exp_compile` | E14 | compiled bytecode vs interpreted execution; artifact-cache cold/warm split |
//! | `exp_mailbox` | E15 | mailbox transport: lock-free SPSC ring mesh vs mutexed slots across message rates |
//! | `exp_server` | E16 | simulation service under load: jobs/sec and p50/p99 latency vs concurrent client count |
//!
//! Criterion micro-benchmarks live in `benches/`.
//!
//! This crate's library part holds the shared plumbing: the standard
//! circuit ladder, kernel construction by discipline, and a fixed-width
//! table printer (stdout) with CSV mirroring.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use parsim_core::{Observe, SimOutcome, Simulator, Stimulus};
use parsim_event::VirtualTime;
use parsim_logic::Bit;
use parsim_machine::MachineConfig;
use parsim_netlist::{generate, Circuit, DelayModel};
use parsim_partition::{ConePartitioner, GateWeights, Partition, Partitioner};

pub use parsim_conservative::{ConservativeSimulator, DeadlockStrategy};
pub use parsim_optimistic::{Cancellation, StateSaving, TimeWarpSimulator};
pub use parsim_sync::SyncSimulator;

/// The three §IV parallel disciplines compared in Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Discipline {
    /// Global-clock synchronous.
    Synchronous,
    /// Chandy–Misra–Bryant with null messages.
    Conservative,
    /// Time Warp (incremental state saving, aggressive cancellation).
    Optimistic,
}

impl Discipline {
    /// All three, in the paper's order.
    pub fn all() -> [Discipline; 3] {
        [Discipline::Synchronous, Discipline::Conservative, Discipline::Optimistic]
    }

    /// The series label used in tables.
    pub fn label(self) -> &'static str {
        match self {
            Discipline::Synchronous => "synchronous",
            Discipline::Conservative => "conservative",
            Discipline::Optimistic => "optimistic",
        }
    }

    /// Builds the modeled kernel for this discipline, in its
    /// literature-typical deployment (the Figure 1 data points come from
    /// *different implementations*, each using its tradition's natural
    /// configuration):
    ///
    /// * synchronous — one block per processor (Soule & Gupta, Mueller-Thuns
    ///   et al. style);
    /// * conservative — fine-grained LPs (8 per processor): the
    ///   Chandy–Misra–Bryant tradition simulated gates or small clusters as
    ///   LPs, which is precisely what made null-message overhead dominant;
    /// * optimistic — small LPs (16 per processor) for rollback containment
    ///   plus a bounded optimism window and frequent GVT (Briner's
    ///   configuration).
    pub fn kernel(self, partition: Partition, machine: MachineConfig) -> Box<dyn Simulator<Bit>> {
        match self {
            Discipline::Synchronous => Box::new(
                SyncSimulator::<Bit>::new(partition, machine).with_observe(Observe::Nothing),
            ),
            Discipline::Conservative => Box::new(
                ConservativeSimulator::<Bit>::new(partition, machine)
                    .with_granularity(8)
                    .with_observe(Observe::Nothing),
            ),
            Discipline::Optimistic => Box::new(
                TimeWarpSimulator::<Bit>::new(partition, machine)
                    .with_granularity(16)
                    .with_window(32)
                    .with_gvt_interval(16)
                    .with_observe(Observe::Nothing),
            ),
        }
    }
}

/// A measurement row: one kernel run reduced to the numbers the tables
/// report.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Modeled speedup (`modeled_work / modeled_makespan`).
    pub speedup: f64,
    /// The raw outcome (for protocol diagnostics).
    pub outcome: SimOutcome<Bit>,
}

/// Runs a kernel and reduces the outcome.
pub fn measure(
    kernel: &dyn Simulator<Bit>,
    circuit: &Circuit,
    stimulus: &Stimulus,
    until: VirtualTime,
) -> Measurement {
    let outcome = kernel.run(circuit, stimulus, until);
    Measurement { speedup: outcome.stats.modeled_speedup().unwrap_or(0.0), outcome }
}

/// The standard circuit ladder for size sweeps: random DAGs with realistic
/// fanout/locality and a 10 % sequential fraction, from `min_gates` up to
/// `max_gates` (quadrupling each step).
pub fn circuit_ladder(min_gates: usize, max_gates: usize) -> Vec<Circuit> {
    let mut sizes = Vec::new();
    let mut g = min_gates;
    while g <= max_gates {
        sizes.push(g);
        g *= 4;
    }
    sizes
        .into_iter()
        .map(|gates| {
            generate::random_dag(&generate::RandomDagConfig {
                gates,
                inputs: (gates / 16).clamp(8, 256),
                seq_fraction: 0.10,
                delays: DelayModel::Unit,
                seed: 0xF1F1,
                ..Default::default()
            })
        })
        .collect()
}

/// The default partition used by the cross-discipline experiments: fanin
/// cones, the locality-preserving choice every surveyed implementation had
/// some analogue of.
pub fn default_partition(circuit: &Circuit, processors: usize) -> Partition {
    ConePartitioner.partition(circuit, processors, &GateWeights::uniform(circuit.len()))
}

/// A fixed-width table printer that mirrors every row into a CSV string and
/// a JSON document (both printed at the end for downstream plotting).
#[derive(Debug)]
pub struct Table {
    headers: Vec<String>,
    widths: Vec<usize>,
    csv: String,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table and prints the header row.
    pub fn new(headers: &[&str]) -> Self {
        let widths: Vec<usize> = headers.iter().map(|h| h.len().max(12)).collect();
        let mut header_line = String::new();
        for (h, w) in headers.iter().zip(&widths) {
            header_line.push_str(&format!("{h:>w$} "));
        }
        println!("{header_line}");
        println!("{}", "-".repeat(header_line.len()));
        Table {
            headers: headers.iter().map(ToString::to_string).collect(),
            widths,
            csv: format!("{}\n", headers.join(",")),
            rows: Vec::new(),
        }
    }

    /// Prints one row (already formatted cells).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row width must match header");
        let mut line = String::new();
        for (c, w) in cells.iter().zip(&self.widths) {
            line.push_str(&format!("{c:>w$} "));
        }
        println!("{line}");
        self.csv.push_str(&format!("{}\n", cells.join(",")));
        self.rows.push(cells.to_vec());
    }

    /// Renders the rows as a machine-readable JSON document: an object with
    /// an `experiment` name, a provenance [`meta`](run_meta) block (git
    /// commit, thread count, rustc version), and a `rows` array of
    /// header-keyed objects. Cells that parse as integers or floats become
    /// JSON numbers; anything else stays a string.
    pub fn to_json(&self, name: &str) -> String {
        let meta = run_meta();
        let mut out = String::from("{\n  \"experiment\": ");
        json_string(name, &mut out);
        out.push_str(",\n  \"meta\": {\"git_commit\": ");
        json_string(&meta.git_commit, &mut out);
        out.push_str(&format!(", \"threads\": {}, \"rustc\": ", meta.threads));
        json_string(&meta.rustc, &mut out);
        out.push_str("},\n  \"rows\": [");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str(if i == 0 { "\n    {" } else { ",\n    {" });
            for (j, (h, c)) in self.headers.iter().zip(row).enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                json_string(h, &mut out);
                out.push_str(": ");
                json_cell(c, &mut out);
            }
            out.push('}');
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Emits the CSV and JSON mirrors, fenced for easy extraction. When the
    /// `PARSIM_BENCH_JSON` environment variable names a directory, the JSON
    /// document is additionally written to `<dir>/<name>.json`.
    pub fn finish(self, name: &str) {
        println!("\n--- csv:{name} ---");
        print!("{}", self.csv);
        println!("--- end csv ---");
        let json = self.to_json(name);
        println!("--- json:{name} ---");
        print!("{json}");
        println!("--- end json ---");
        if let Ok(dir) = std::env::var("PARSIM_BENCH_JSON") {
            let path = std::path::Path::new(&dir).join(format!("{name}.json"));
            match std::fs::write(&path, &json) {
                Ok(()) => println!("wrote {}", path.display()),
                Err(e) => eprintln!("could not write {}: {e}", path.display()),
            }
        }
    }
}

/// Provenance of one benchmark invocation, stamped into every emitted JSON
/// document so a `results/exp_*.json` file is attributable to the exact
/// code, toolchain and machine shape that produced it.
#[derive(Debug, Clone)]
pub struct RunMeta {
    /// `git rev-parse HEAD` of the working tree, or `"unknown"` outside a
    /// checkout (e.g. a bare tarball build).
    pub git_commit: String,
    /// Host threads available to the run (`std::thread::available_parallelism`),
    /// or 0 when the host will not say.
    pub threads: usize,
    /// `rustc --version` of the toolchain on `PATH`, or `"unknown"`.
    pub rustc: String,
}

/// Collects the run provenance, once per process (the git/rustc
/// subprocesses are spawned on first use and cached).
pub fn run_meta() -> &'static RunMeta {
    static META: std::sync::OnceLock<RunMeta> = std::sync::OnceLock::new();
    META.get_or_init(|| RunMeta {
        git_commit: command_line("git", &["rev-parse", "HEAD"]),
        threads: std::thread::available_parallelism().map_or(0, std::num::NonZero::get),
        rustc: command_line("rustc", &["--version"]),
    })
}

/// First stdout line of `cmd args…`, or `"unknown"` when the command is
/// missing, fails, or prints nothing.
fn command_line(cmd: &str, args: &[&str]) -> String {
    std::process::Command::new(cmd)
        .args(args)
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| {
            let text = String::from_utf8_lossy(&o.stdout);
            text.lines().next().map(|l| l.trim().to_string()).filter(|l| !l.is_empty())
        })
        .unwrap_or_else(|| "unknown".to_string())
}

/// Appends `s` as a JSON string literal (quoted, escaped).
fn json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a table cell as a JSON value: integer, float, or string.
fn json_cell(cell: &str, out: &mut String) {
    if let Ok(i) = cell.parse::<i64>() {
        out.push_str(&i.to_string());
    } else if let Ok(f) = cell.parse::<f64>() {
        if f.is_finite() {
            out.push_str(&format!("{f}"));
        } else {
            json_string(cell, out);
        }
    } else {
        json_string(cell, out);
    }
}

/// Formats a float with two decimals (table cell helper).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_quadruples() {
        let ladder = circuit_ladder(256, 4096);
        assert_eq!(ladder.len(), 3);
        assert!(ladder[0].len() >= 256);
        assert!(ladder[2].len() >= 4 * ladder[1].len() / 2);
    }

    #[test]
    fn table_json_mirror_types_cells() {
        let mut t = Table::new(&["gates", "speedup", "strategy"]);
        t.row(&["256".into(), "3.50".into(), "null-msg".into()]);
        t.row(&["1024".into(), "5.25".into(), "recovery(3)".into()]);
        let json = t.to_json("unit");
        assert!(json.contains("\"experiment\": \"unit\""));
        assert!(json.contains("\"gates\": 256"));
        assert!(json.contains("\"speedup\": 3.5"));
        assert!(json.contains("\"strategy\": \"recovery(3)\""));
        assert!(json.contains("\"meta\": {\"git_commit\": "));
        assert!(json.contains("\"threads\": "));
        assert!(json.contains("\"rustc\": "));
    }

    #[test]
    fn run_meta_is_populated_and_cached() {
        let a = run_meta();
        let b = run_meta();
        assert!(std::ptr::eq(a, b), "meta is collected once per process");
        // In this repo's CI and dev environments both tools exist; the
        // "unknown" fallback is for detached tarball builds only.
        assert!(!a.git_commit.is_empty());
        assert!(a.rustc == "unknown" || a.rustc.starts_with("rustc "), "{}", a.rustc);
    }

    #[test]
    fn disciplines_build_and_run() {
        let c = generate::ripple_adder(4, DelayModel::Unit);
        let stim = Stimulus::random(1, 10);
        for d in Discipline::all() {
            let kernel = d.kernel(default_partition(&c, 2), MachineConfig::shared_memory(2));
            let m = measure(kernel.as_ref(), &c, &stim, VirtualTime::new(100));
            assert!(m.speedup >= 0.0, "{}", d.label());
        }
    }
}
