//! Criterion micro-benchmark: partitioner runtime.
//!
//! §III notes simulated annealing's "prohibitively long" execution time;
//! this bench quantifies the runtime ladder across all algorithms on one
//! mid-size circuit.

use criterion::{criterion_group, criterion_main, Criterion};
use parsim_netlist::generate::{self, RandomDagConfig};
use parsim_partition::{all_partitioners, GateWeights};
use std::hint::black_box;

fn bench_partitioners(c: &mut Criterion) {
    let circuit = generate::random_dag(&RandomDagConfig { gates: 2000, ..Default::default() });
    let weights = GateWeights::uniform(circuit.len());

    let mut group = c.benchmark_group("partitioners");
    group.sample_size(10);
    for p in all_partitioners(1) {
        group.bench_function(p.name(), |b| {
            b.iter(|| black_box(p.partition(&circuit, 8, &weights)).cut_edges(&circuit));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_partitioners);
criterion_main!(benches);
