//! Criterion macro-benchmark: whole-kernel event throughput.
//!
//! Wall-clock events/second of the sequential reference (both queue
//! variants), the oblivious kernel and the three modeled parallel kernels
//! on a mid-size circuit. On a single-core host the parallel kernels are
//! expected to be *slower* in wall-clock terms — they do the same logical
//! work plus protocol bookkeeping; their value is the modeled speedup,
//! which this bench does not measure.

use criterion::{criterion_group, criterion_main, Criterion};
use parsim_core::{ObliviousSimulator, Observe, SequentialSimulator, Simulator, Stimulus};
use parsim_event::VirtualTime;
use parsim_logic::Bit;
use parsim_machine::MachineConfig;
use parsim_netlist::{generate, DelayModel};
use parsim_partition::{ConePartitioner, GateWeights, Partitioner};
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    let circuit = generate::array_multiplier(12, DelayModel::Unit);
    let stimulus = Stimulus::random(1, 30);
    let until = VirtualTime::new(600);
    let partition = ConePartitioner.partition(&circuit, 8, &GateWeights::uniform(circuit.len()));
    let machine = MachineConfig::shared_memory(8);

    let mut group = c.benchmark_group("kernels");
    group.sample_size(10);

    let kernels: Vec<(&str, Box<dyn Simulator<Bit>>)> = vec![
        ("sequential_heap", Box::new(SequentialSimulator::new().with_observe(Observe::Nothing))),
        (
            "sequential_calendar",
            Box::new(
                SequentialSimulator::new().with_observe(Observe::Nothing).with_calendar_queue(),
            ),
        ),
        (
            "sequential_pairing",
            Box::new(
                SequentialSimulator::new()
                    .with_observe(Observe::Nothing)
                    .with_queue(parsim_core::QueueKind::PairingHeap),
            ),
        ),
        ("oblivious", Box::new(ObliviousSimulator::new().with_observe(Observe::Nothing))),
        (
            "sync_modeled",
            Box::new(
                parsim_sync::SyncSimulator::new(partition.clone(), machine)
                    .with_observe(Observe::Nothing),
            ),
        ),
        (
            "conservative_modeled",
            Box::new(
                parsim_conservative::ConservativeSimulator::new(partition.clone(), machine)
                    .with_observe(Observe::Nothing),
            ),
        ),
        (
            "timewarp_modeled",
            Box::new(
                parsim_optimistic::TimeWarpSimulator::new(partition.clone(), machine)
                    .with_observe(Observe::Nothing),
            ),
        ),
    ];

    for (name, kernel) in &kernels {
        group.bench_function(*name, |b| {
            b.iter(|| black_box(kernel.run(&circuit, &stimulus, until)).stats.events_processed);
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
