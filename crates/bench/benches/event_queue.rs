//! Criterion micro-benchmark: pending-event-set implementations.
//!
//! §II names "event queue management" among the major components of the
//! simulation loop; this bench compares the binary heap against the
//! calendar queue on a hold-model workload (the standard queue benchmark:
//! steady-state pop-one-push-one).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parsim_event::{
    BinaryHeapQueue, CalendarQueue, Event, EventQueue, PairingHeapQueue, VirtualTime,
};
use parsim_logic::Bit;
use parsim_netlist::GateId;
use std::hint::black_box;

fn hold_model<Q: EventQueue<Bit>>(queue: &mut Q, population: usize, holds: usize) {
    let mut x: u64 = 0x9E3779B9;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    for _ in 0..population {
        queue.push(Event::new(VirtualTime::new(next() % 10_000), GateId::new(0), Bit::One));
    }
    for _ in 0..holds {
        let e = queue.pop().expect("population maintained");
        let t = e.time + parsim_netlist::Delay::new(next() % 100 + 1);
        queue.push(Event::new(t, e.net, e.value));
    }
    black_box(queue.len());
    queue.clear();
}

fn bench_queues(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue_hold");
    group.sample_size(10);
    for &population in &[64usize, 1024, 16384] {
        group.bench_with_input(
            BenchmarkId::new("binary_heap", population),
            &population,
            |b, &n| {
                let mut q = BinaryHeapQueue::new();
                b.iter(|| hold_model(&mut q, n, 4 * n));
            },
        );
        group.bench_with_input(BenchmarkId::new("calendar", population), &population, |b, &n| {
            let mut q = CalendarQueue::new();
            b.iter(|| hold_model(&mut q, n, 4 * n));
        });
        group.bench_with_input(BenchmarkId::new("pairing", population), &population, |b, &n| {
            let mut q = PairingHeapQueue::new();
            b.iter(|| hold_model(&mut q, n, 4 * n));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_queues);
criterion_main!(benches);
