//! Criterion micro-benchmark: gate evaluation throughput per logic family.
//!
//! Quantifies the cost of richer value systems (§II: two-valued vs
//! multi-valued logic): Bit vs Logic4 vs IEEE 1164 Std9, across a gate mix.

use criterion::{criterion_group, criterion_main, Criterion};
use parsim_logic::{eval_combinational, Bit, GateKind, Logic4, LogicValue, Std9};
use std::hint::black_box;

fn eval_mix<V: LogicValue>(inputs: &[V; 4]) -> u64 {
    let mut acc = 0u64;
    for kind in [GateKind::And, GateKind::Nand, GateKind::Or, GateKind::Nor, GateKind::Xor] {
        let out = eval_combinational(kind, black_box(&inputs[..]));
        acc = acc.wrapping_add(out.to_char() as u64);
    }
    acc
}

fn bench_families(c: &mut Criterion) {
    let mut group = c.benchmark_group("gate_eval_mix");
    group.sample_size(20);
    group.bench_function("bit", |b| {
        let inputs = [Bit::One, Bit::Zero, Bit::One, Bit::One];
        b.iter(|| eval_mix(&inputs));
    });
    group.bench_function("logic4", |b| {
        let inputs = [Logic4::One, Logic4::X, Logic4::Zero, Logic4::Z];
        b.iter(|| eval_mix(&inputs));
    });
    group.bench_function("std9", |b| {
        let inputs = [Std9::One, Std9::W, Std9::L, Std9::H];
        b.iter(|| eval_mix(&inputs));
    });
    group.finish();
}

criterion_group!(benches, bench_families);
criterion_main!(benches);
