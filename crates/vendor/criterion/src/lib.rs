//! Offline, dependency-free subset of the `criterion` crate API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of `criterion` it uses: `criterion_group!` /
//! `criterion_main!`, [`Criterion`] with `bench_function`,
//! `benchmark_group` and `bench_with_input`, [`BenchmarkId`] and
//! [`Bencher::iter`]. There is no statistical analysis: each benchmark is
//! warmed up briefly, then timed over a fixed wall-clock window and
//! reported as mean ns/iter on stdout. That is enough to compare
//! alternatives locally and to keep `--all-targets` builds honest.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// A named benchmark id, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { name: format!("{}/{}", name.into(), parameter) }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Times closures handed to it by benchmark bodies.
#[derive(Debug)]
pub struct Bencher {
    iters_done: u64,
    total: Duration,
    budget: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly within the measurement budget, recording the
    /// mean time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Brief warm-up so first-touch effects don't dominate tiny budgets.
        black_box(f());
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(f());
            iters += 1;
            if start.elapsed() >= self.budget {
                break;
            }
        }
        self.total = start.elapsed();
        self.iters_done = iters;
    }
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { budget: Duration::from_millis(300) }
    }
}

fn run_one(label: &str, budget: Duration, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher { iters_done: 0, total: Duration::ZERO, budget };
    f(&mut b);
    if b.iters_done == 0 {
        println!("bench {label:<40} (no iterations recorded)");
    } else {
        let per_iter = b.total.as_nanos() / u128::from(b.iters_done);
        println!("bench {label:<40} {per_iter:>12} ns/iter ({} iters)", b.iters_done);
    }
}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_one(&id.to_string(), self.budget, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), budget: self.budget, _parent: self }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    budget: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's fixed time budget ignores
    /// the requested sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.budget, f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F: FnOnce(&mut Bencher, &I)>(
        &mut self,
        id: impl Display,
        input: &I,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.budget, |b| f(b, input));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut b =
            Bencher { iters_done: 0, total: Duration::ZERO, budget: Duration::from_millis(5) };
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert!(b.iters_done > 0);
        assert!(count > b.iters_done); // warm-up call included
    }

    #[test]
    fn groups_and_ids_render() {
        assert_eq!(BenchmarkId::new("heap", 64).to_string(), "heap/64");
        let mut c = Criterion { budget: Duration::from_millis(1) };
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::new("param", 3), &3, |b, &n| {
            b.iter(|| black_box(n * 2));
        });
        g.finish();
    }
}
