//! Offline, dependency-free subset of the `proptest` crate API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of `proptest` it uses: the [`proptest!`] test macro,
//! [`Strategy`] with `prop_map`, range/tuple/`Just`/one-of strategies,
//! `prop::collection::vec`, `prop::sample::{select, Index}`,
//! `prop::option::of`, [`any`], and the `prop_assert*` macros.
//!
//! Semantics differ from upstream in one deliberate way: there is **no
//! shrinking**. A failing case reports its case number and the generated
//! inputs (regenerated from the per-case seed, so reporting costs nothing
//! on the success path). Generation is fully deterministic per case
//! index, so failures reproduce exactly across runs and machines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

pub mod test_runner {
    //! The minimal test-execution plumbing behind [`proptest!`](crate::proptest).

    use rand::rngs::StdRng;
    use rand::{Rng as _, SeedableRng as _};
    use std::fmt;

    /// Per-run configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A test-case failure raised by `prop_assert!`/`prop_assert_eq!`.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// The value generator handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Creates a generator from a case seed.
        pub fn from_seed(seed: u64) -> Self {
            TestRng(StdRng::seed_from_u64(seed))
        }

        /// The next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        /// A uniform value in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            self.0.random()
        }

        /// A uniform value in `0..bound` (`bound` > 0).
        pub fn below(&mut self, bound: u64) -> u64 {
            self.0.random_range(0..bound)
        }
    }

    /// The deterministic seed for one test case.
    pub fn case_seed(case: u32) -> u64 {
        0x5EED_CA5E_0000_0000 ^ u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);

/// Types with a canonical "anything" strategy, used by [`any`].
pub trait Arbitrary: Sized + Debug {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u32
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for prop::sample::Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        prop::sample::Index { raw: rng.next_u64() }
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<u64>()`, `any::<bool>()`, …).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// One weighted arm of a [`Union`]: `(weight, generator)`.
pub type UnionArm<T> = (u32, Box<dyn Fn(&mut TestRng) -> T>);

/// A weighted union of boxed strategies; built by [`prop_oneof!`](crate::prop_oneof).
pub struct Union<T> {
    arms: Vec<UnionArm<T>>,
}

impl<T> Union<T> {
    /// Creates a union from `(weight, generator)` arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or the total weight is zero.
    pub fn new(arms: Vec<UnionArm<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        assert!(arms.iter().any(|(w, _)| *w > 0), "prop_oneof! needs a positive weight");
        Union { arms }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
        let mut pick = rng.below(total);
        for (w, gen) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return gen(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum covered above")
    }
}

pub mod prop {
    //! The `prop::` namespace of strategy constructors.

    pub mod collection {
        //! Collection strategies.

        use crate::test_runner::TestRng;
        use crate::Strategy;
        use std::fmt::Debug;
        use std::ops::{Range, RangeInclusive};

        /// A length range for [`vec`].
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            min: usize,
            max: usize, // inclusive
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { min: n, max: n }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty vec size range");
                SizeRange { min: r.start, max: r.end - 1 }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> Self {
                assert!(r.start() <= r.end(), "empty vec size range");
                SizeRange { min: *r.start(), max: *r.end() }
            }
        }

        /// Strategy returned by [`vec`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S>
        where
            S::Value: Debug,
        {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.max - self.size.min) as u64;
                let len = self.size.min + if span == 0 { 0 } else { rng.below(span + 1) as usize };
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// A `Vec` of values from `element`, with a length drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }
    }

    pub mod sample {
        //! Sampling strategies.

        use crate::test_runner::TestRng;
        use crate::Strategy;
        use std::fmt::Debug;

        /// Strategy returned by [`select`].
        #[derive(Debug, Clone)]
        pub struct Select<T> {
            options: Vec<T>,
        }

        impl<T: Clone + Debug> Strategy for Select<T> {
            type Value = T;

            fn generate(&self, rng: &mut TestRng) -> T {
                let i = rng.below(self.options.len() as u64) as usize;
                self.options[i].clone()
            }
        }

        /// A uniformly random element of `options`.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select needs at least one option");
            Select { options }
        }

        /// An arbitrary index into a collection whose length is only known
        /// at use time; obtain one with `any::<prop::sample::Index>()`.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        pub struct Index {
            pub(crate) raw: u64,
        }

        impl Index {
            /// Projects the index onto a collection of length `len`.
            ///
            /// # Panics
            ///
            /// Panics if `len` is zero.
            pub fn index(self, len: usize) -> usize {
                assert!(len > 0, "cannot index an empty collection");
                ((u128::from(self.raw) * len as u128) >> 64) as usize
            }
        }
    }

    pub mod option {
        //! `Option` strategies.

        use crate::test_runner::TestRng;
        use crate::Strategy;
        use std::fmt::Debug;

        /// Strategy returned by [`of`].
        #[derive(Debug, Clone)]
        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S>
        where
            S::Value: Debug,
        {
            type Value = Option<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                // `None` a quarter of the time, mirroring upstream's bias
                // towards the interesting (`Some`) side.
                if rng.below(4) == 0 {
                    None
                } else {
                    Some(self.inner.generate(rng))
                }
            }
        }

        /// `Some` of a value from `inner` (75%), or `None` (25%).
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }
    }
}

/// Everything a `proptest!`-based test file needs.
pub mod prelude {
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, Strategy};
}

/// Defines property tests: `proptest! { #[test] fn f(x in strategy) { … } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr;) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __strategies = ($(($strat),)+);
            for __case in 0..__config.cases {
                let __seed = $crate::test_runner::case_seed(__case);
                let mut __rng = $crate::test_runner::TestRng::from_seed(__seed);
                let ($($arg,)+) = $crate::Strategy::generate(&__strategies, &mut __rng);
                let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(__e) = __result {
                    // Regenerate the inputs from the case seed for the
                    // report; the success path never formats anything.
                    let mut __rng = $crate::test_runner::TestRng::from_seed(__seed);
                    let __inputs = $crate::Strategy::generate(&__strategies, &mut __rng);
                    panic!(
                        "proptest case {}/{} failed: {}\ninputs {}: {:#?}",
                        __case + 1,
                        __config.cases,
                        __e,
                        stringify!(($($arg),+)),
                        __inputs,
                    );
                }
            }
        }
        $crate::__proptest_items!($cfg; $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                __l,
                __r,
            )));
        }
    }};
}

/// Picks one of several strategies, optionally weighted: `prop_oneof![a, b]`
/// or `prop_oneof![3 => a, 2 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$((
            $weight as u32,
            {
                let __s = $strat;
                ::std::boxed::Box::new(move |__rng: &mut $crate::test_runner::TestRng| {
                    $crate::Strategy::generate(&__s, __rng)
                }) as ::std::boxed::Box<dyn Fn(&mut $crate::test_runner::TestRng) -> _>
            },
        )),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Push(u64),
        Pop,
    }

    fn any_op() -> impl Strategy<Value = Op> {
        prop_oneof![
            3 => (0u64..100).prop_map(Op::Push),
            2 => Just(Op::Pop),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 10u64..20, y in 3usize..=5, f in 0.0f64..=1.0) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((3..=5).contains(&y));
            prop_assert!((0.0..=1.0).contains(&f));
        }

        #[test]
        fn vec_and_select(v in prop::collection::vec(0u8..4, 1..10),
                          s in prop::sample::select(vec!['a', 'b'])) {
            prop_assert!(!v.is_empty() && v.len() < 10);
            prop_assert!(v.iter().all(|&x| x < 4));
            prop_assert!(s == 'a' || s == 'b');
        }

        #[test]
        fn index_projects(idx in any::<prop::sample::Index>(), len in 1usize..50) {
            prop_assert!(idx.index(len) < len);
        }

        #[test]
        fn oneof_and_option(op in any_op(), w in prop::option::of(4u64..64)) {
            match op {
                Op::Push(x) => prop_assert!(x < 100),
                Op::Pop => {}
            }
            if let Some(w) = w {
                prop_assert!((4..64).contains(&w), "window {} out of range", w);
            }
        }

        #[test]
        fn tuples_map(pair in (1u32..5, 1u32..5).prop_map(|(a, b)| (a, b, a + b))) {
            let (a, b, sum) = pair;
            prop_assert_eq!(a + b, sum);
        }
    }

    #[test]
    fn failure_reports_inputs() {
        // A deliberately failing property: run it by hand and check the panic.
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(8))]
                fn always_fails(x in 0u64..10) {
                    prop_assert!(x > 100, "x was {}", x);
                }
            }
            always_fails();
        });
        let err = *result.unwrap_err().downcast::<String>().expect("panic payload is a String");
        assert!(err.contains("proptest case 1/8 failed"), "got: {err}");
        assert!(err.contains("inputs"), "got: {err}");
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = (0u64..1000, prop::collection::vec(0u8..9, 3..20));
        let mut a = crate::test_runner::TestRng::from_seed(crate::test_runner::case_seed(7));
        let mut b = crate::test_runner::TestRng::from_seed(crate::test_runner::case_seed(7));
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }
}
