//! Offline, dependency-free subset of the `rand` crate API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand` 0.9 it actually uses: a seedable
//! generator ([`rngs::StdRng`]), the [`Rng`] extension methods
//! (`random`, `random_bool`, `random_range`) and slice selection
//! ([`seq::IndexedRandom::choose`]).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — statistically
//! strong for simulation workloads and, critically, *stable*: every value
//! is a pure function of the seed, so generated circuits and experiments
//! stay reproducible across platforms and releases. It is **not** the
//! upstream `StdRng` stream and is not cryptographically secure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::random`] can produce.
pub trait Standard: Sized {
    /// Draws one value from the generator.
    fn sample(rng: &mut rngs::StdRng) -> Self;
}

impl Standard for u64 {
    fn sample(rng: &mut rngs::StdRng) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn sample(rng: &mut rngs::StdRng) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample(rng: &mut rngs::StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::random_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from(self, rng: &mut rngs::StdRng) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut rngs::StdRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.bounded_u64(span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut rngs::StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.bounded_u64(span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, rng: &mut rngs::StdRng) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from(self, rng: &mut rngs::StdRng) -> f64 {
        self.start() + f64::sample(rng) * (self.end() - self.start())
    }
}

/// Random-value convenience methods, mirroring `rand::Rng`.
pub trait Rng {
    /// The next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// A random value of type `T`.
    fn random<T: Standard>(&mut self) -> T;

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool;

    /// A value drawn uniformly from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
}

impl Rng for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        self.step()
    }

    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        f64::sample(self) < p
    }

    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

/// Concrete generator types.
pub mod rngs {
    use super::SeedableRng;

    /// A seedable xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn step(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Unbiased uniform value in `0..bound` via Lemire rejection.
        pub(crate) fn bounded_u64(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            loop {
                let x = self.step();
                let hi = ((u128::from(x) * u128::from(bound)) >> 64) as u64;
                let lo = x.wrapping_mul(bound);
                if lo >= bound.wrapping_neg() % bound {
                    return hi;
                }
                // Extremely rare rejection; retry keeps the draw unbiased.
            }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the xoshiro state.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Random selection from slices, mirroring `rand::seq::IndexedRandom`.
    pub trait IndexedRandom {
        /// The element type.
        type Item;

        /// A uniformly random element, or `None` if the slice is empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> IndexedRandom for [T] {
        type Item = T;

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let span = self.len() as u64;
                let x = rng.next_u64();
                let i = ((u128::from(x) * u128::from(span)) >> 64) as usize;
                self.get(i)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::IndexedRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u64 = rng.random_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = rng.random_range(3..=5);
            assert!((3..=5).contains(&y));
            let f: f64 = rng.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_interval_and_bool_probabilities() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut trues = 0;
        for _ in 0..10_000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            if rng.random_bool(0.25) {
                trues += 1;
            }
        }
        assert!((1800..3200).contains(&trues), "p=0.25 gave {trues}/10000");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = StdRng::seed_from_u64(3);
        let items = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            let &x = items.choose(&mut rng).unwrap();
            seen[x - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
