//! Offline, dependency-free subset of the `crossbeam` crate API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of `crossbeam` 0.8 it uses: multi-producer
//! multi-consumer unbounded channels whose `Sender` *and* `Receiver` are
//! cloneable and `Send + Sync` (unlike `std::sync::mpsc`). The
//! implementation is a mutex-guarded queue with a condition variable —
//! not lock-free, but correct, and plenty for the kernel worker counts
//! this workspace runs (one channel endpoint per simulated processor).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::error::Error;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<Queue<T>>,
        ready: Condvar,
    }

    struct Queue<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue { items: VecDeque::new(), senders: 1, receivers: 1 }),
            ready: Condvar::new(),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    /// The sending half of a channel. Cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel. Cloneable.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like the real crate: Debug without a `T: Debug` bound, so senders of
    // non-Debug payloads can still `.unwrap()`.
    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T: fmt::Debug> Error for SendError<T> {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl Error for TryRecvError {}

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl Error for RecvError {}

    impl<T> Sender<T> {
        /// Appends a message to the queue.
        ///
        /// # Errors
        ///
        /// Returns the message back if every [`Receiver`] has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut q = self.shared.queue.lock().expect("channel poisoned");
            if q.receivers == 0 {
                return Err(SendError(msg));
            }
            q.items.push_back(msg);
            drop(q);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().expect("channel poisoned").senders += 1;
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut q = self.shared.queue.lock().expect("channel poisoned");
            q.senders -= 1;
            if q.senders == 0 {
                drop(q);
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Removes the oldest message, if one is immediately available.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] if the queue is empty but senders remain;
        /// [`TryRecvError::Disconnected`] if it is empty for good.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.shared.queue.lock().expect("channel poisoned");
            match q.items.pop_front() {
                Some(msg) => Ok(msg),
                None if q.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocks until a message arrives or every sender is gone.
        ///
        /// # Errors
        ///
        /// [`RecvError`] if the channel is empty and has no senders left.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().expect("channel poisoned");
            loop {
                if let Some(msg) = q.items.pop_front() {
                    return Ok(msg);
                }
                if q.senders == 0 {
                    return Err(RecvError);
                }
                q = self.shared.ready.wait(q).expect("channel poisoned");
            }
        }

        /// A non-blocking iterator draining currently queued messages.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().expect("channel poisoned").receivers += 1;
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.queue.lock().expect("channel poisoned").receivers -= 1;
        }
    }

    /// Iterator returned by [`Receiver::try_iter`].
    pub struct TryIter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.try_recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, TryRecvError};
    use std::thread;

    #[test]
    fn fifo_order_and_try_iter() {
        let (tx, rx) = unbounded();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn cross_thread_send_recv() {
        let (tx, rx) = unbounded();
        let senders: Vec<_> = (0..4).map(|i| (i, tx.clone())).collect();
        drop(tx);
        let handles: Vec<_> =
            senders.into_iter().map(|(i, tx)| thread::spawn(move || tx.send(i).unwrap())).collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut got: Vec<i32> = rx.try_iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn disconnection_is_reported() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert!(rx.recv().is_err());

        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn blocking_recv_wakes() {
        let (tx, rx) = unbounded();
        let h = thread::spawn(move || rx.recv().unwrap());
        tx.send(42u32).unwrap();
        assert_eq!(h.join().unwrap(), 42);
    }
}
