//! Self-tests for the vendored loom shim: the explorer must actually
//! visit distinct interleavings, catch real concurrency bugs (asserts,
//! lost wakeups, deadlocks), and pass correct code.

use std::panic::{catch_unwind, AssertUnwindSafe};

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::{Arc, Condvar, Mutex};

fn fails(f: impl Fn() + Send + Sync + 'static) -> String {
    let err =
        catch_unwind(AssertUnwindSafe(|| loom::model(f))).expect_err("model unexpectedly passed");
    if let Some(s) = err.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = err.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else {
        "non-string panic".to_string()
    }
}

#[test]
fn passes_sequential_model() {
    loom::model(|| {
        let m = Mutex::new(0u32);
        *m.lock().unwrap() += 1;
        assert_eq!(*m.lock().unwrap(), 1);
    });
}

#[test]
fn mutex_protects_counter_across_threads() {
    loom::model(|| {
        let m = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let m = Arc::clone(&m);
                loom::thread::spawn(move || {
                    let mut g = m.lock().unwrap();
                    let v = *g;
                    loom::thread::yield_now();
                    *g = v + 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock().unwrap(), 2);
    });
}

#[test]
fn finds_read_modify_write_race() {
    // A non-atomic read/modify/write on an atomic cell: some interleaving
    // loses an increment, and the explorer must find it.
    let msg = fails(|| {
        let c = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&c);
                loom::thread::spawn(move || {
                    let v = c.load(Ordering::SeqCst);
                    c.store(v + 1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.load(Ordering::SeqCst), 2, "lost increment");
    });
    assert!(msg.contains("lost increment"), "unexpected failure: {msg}");
}

#[test]
fn atomic_fetch_add_has_no_race() {
    loom::model(|| {
        let c = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&c);
                loom::thread::spawn(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.load(Ordering::SeqCst), 2);
    });
}

#[test]
fn finds_lost_wakeup() {
    // Classic lost wakeup: the waiter checks a flag *outside* the mutex,
    // the notifier sets it and notifies in the window before the waiter
    // blocks, and the notification is lost.
    let msg = fails(|| {
        use loom::sync::atomic::AtomicBool;
        let state = Arc::new((AtomicBool::new(false), Mutex::new(()), Condvar::new()));
        let s2 = Arc::clone(&state);
        let notifier = loom::thread::spawn(move || {
            let (flag, _m, cv) = &*s2;
            flag.store(true, Ordering::SeqCst);
            cv.notify_all();
        });
        let (flag, m, cv) = &*state;
        // BUG: the flag check is not under the lock that guards the wait.
        if !flag.load(Ordering::SeqCst) {
            let g = m.lock().unwrap();
            drop(cv.wait(g).unwrap());
        }
        notifier.join().unwrap();
    });
    assert!(msg.contains("deadlock"), "unexpected failure: {msg}");
}

#[test]
fn condvar_loop_is_sound() {
    loom::model(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let notifier = loom::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock().unwrap() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock().unwrap();
        while !*g {
            g = cv.wait(g).unwrap();
        }
        drop(g);
        notifier.join().unwrap();
    });
}

#[test]
fn finds_abba_deadlock() {
    let msg = fails(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = loom::thread::spawn(move || {
            let _ga = a2.lock().unwrap();
            let _gb = b2.lock().unwrap();
        });
        let _gb = b.lock().unwrap();
        let _ga = a.lock().unwrap();
        drop((_ga, _gb));
        t.join().unwrap();
    });
    assert!(msg.contains("deadlock"), "unexpected failure: {msg}");
}

#[test]
fn poisoning_is_modeled() {
    loom::model(|| {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let t = loom::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison it");
        });
        assert!(t.join().is_err());
        let v = *m.lock().unwrap_or_else(loom::sync::PoisonError::into_inner);
        assert_eq!(v, 0);
        assert!(m.is_poisoned());
    });
}

#[test]
fn scoped_threads_borrow_stack_data() {
    loom::model(|| {
        let data = [1u32, 2, 3];
        let total = Mutex::new(0u32);
        loom::thread::scope(|s| {
            for chunk in &data {
                s.spawn(|| {
                    *total.lock().unwrap() += *chunk;
                });
            }
        });
        assert_eq!(total.into_inner().unwrap(), 6);
    });
}

#[test]
fn scoped_join_returns_value() {
    loom::model(|| {
        let out = loom::thread::scope(|s| {
            let h = s.spawn(|| 41u64);
            h.join().unwrap() + 1
        });
        assert_eq!(out, 42);
    });
}

#[test]
fn unjoined_panic_fails_model() {
    let msg = fails(|| {
        let t = loom::thread::spawn(|| panic!("dropped on the floor"));
        // BUG: handle dropped without join; the panic must still surface.
        drop(t);
    });
    assert!(msg.contains("dropped on the floor"), "unexpected failure: {msg}");
}
