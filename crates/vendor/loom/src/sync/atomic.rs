//! Model-checked atomic types.
//!
//! Each operation is a scheduling point, so the explorer interleaves them
//! with every other synchronization operation. The `Ordering` argument is
//! accepted for API compatibility and ignored: all atomics behave
//! sequentially consistently in the model (interleaving exploration, not
//! weak-memory exploration).

use std::cell::UnsafeCell;
use std::fmt;

use crate::rt;

pub use std::sync::atomic::Ordering;

fn point() {
    rt::with_ctx(|exec, me| exec.preemption_point(me));
}

macro_rules! atomic_int {
    ($name:ident, $ty:ty) => {
        /// Model-checked counterpart of the matching `std::sync::atomic`
        /// type.
        pub struct $name {
            v: UnsafeCell<$ty>,
        }

        // SAFETY: every access goes through a scheduling point and runs
        // while the calling model thread holds the scheduler baton, so all
        // accesses are serialized and ordered through the scheduler lock.
        unsafe impl Send for $name {}
        unsafe impl Sync for $name {}

        impl $name {
            /// Creates the atomic (usable outside a model; operations on it
            /// are not).
            pub const fn new(v: $ty) -> Self {
                Self { v: UnsafeCell::new(v) }
            }

            fn with<R>(&self, f: impl FnOnce(&mut $ty) -> R) -> R {
                point();
                // SAFETY: the baton serializes all access (see the type's
                // Send/Sync justification).
                f(unsafe { &mut *self.v.get() })
            }

            pub fn load(&self, _o: Ordering) -> $ty {
                self.with(|v| *v)
            }

            pub fn store(&self, val: $ty, _o: Ordering) {
                self.with(|v| *v = val);
            }

            pub fn swap(&self, val: $ty, _o: Ordering) -> $ty {
                self.with(|v| std::mem::replace(v, val))
            }

            pub fn fetch_add(&self, d: $ty, _o: Ordering) -> $ty {
                self.with(|v| {
                    let old = *v;
                    *v = v.wrapping_add(d);
                    old
                })
            }

            pub fn fetch_sub(&self, d: $ty, _o: Ordering) -> $ty {
                self.with(|v| {
                    let old = *v;
                    *v = v.wrapping_sub(d);
                    old
                })
            }

            pub fn fetch_max(&self, val: $ty, _o: Ordering) -> $ty {
                self.with(|v| {
                    let old = *v;
                    *v = old.max(val);
                    old
                })
            }

            pub fn fetch_min(&self, val: $ty, _o: Ordering) -> $ty {
                self.with(|v| {
                    let old = *v;
                    *v = old.min(val);
                    old
                })
            }

            pub fn fetch_or(&self, val: $ty, _o: Ordering) -> $ty {
                self.with(|v| {
                    let old = *v;
                    *v = old | val;
                    old
                })
            }

            pub fn fetch_and(&self, val: $ty, _o: Ordering) -> $ty {
                self.with(|v| {
                    let old = *v;
                    *v = old & val;
                    old
                })
            }

            pub fn compare_exchange(
                &self,
                current: $ty,
                new: $ty,
                _success: Ordering,
                _failure: Ordering,
            ) -> Result<$ty, $ty> {
                self.with(|v| {
                    if *v == current {
                        *v = new;
                        Ok(current)
                    } else {
                        Err(*v)
                    }
                })
            }

            pub fn compare_exchange_weak(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                // The model never fails spuriously.
                self.compare_exchange(current, new, success, failure)
            }

            pub fn into_inner(self) -> $ty {
                self.v.into_inner()
            }

            pub fn get_mut(&mut self) -> &mut $ty {
                self.v.get_mut()
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new(<$ty>::default())
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                // No scheduling point: Debug may run outside the model
                // (e.g. while rendering a failure).
                // SAFETY: a shared debug read of the cell; the model is
                // either quiescent or the caller holds the baton.
                f.debug_tuple(stringify!($name)).field(unsafe { &*self.v.get() }).finish()
            }
        }
    };
}

atomic_int!(AtomicU32, u32);
atomic_int!(AtomicU64, u64);
atomic_int!(AtomicUsize, usize);
atomic_int!(AtomicI64, i64);

/// Model-checked counterpart of `std::sync::atomic::AtomicBool`.
pub struct AtomicBool {
    v: UnsafeCell<bool>,
}

// SAFETY: as for the integer atomics above.
unsafe impl Send for AtomicBool {}
unsafe impl Sync for AtomicBool {}

impl AtomicBool {
    pub const fn new(v: bool) -> Self {
        Self { v: UnsafeCell::new(v) }
    }

    fn with<R>(&self, f: impl FnOnce(&mut bool) -> R) -> R {
        point();
        // SAFETY: the baton serializes all access.
        f(unsafe { &mut *self.v.get() })
    }

    pub fn load(&self, _o: Ordering) -> bool {
        self.with(|v| *v)
    }

    pub fn store(&self, val: bool, _o: Ordering) {
        self.with(|v| *v = val);
    }

    pub fn swap(&self, val: bool, _o: Ordering) -> bool {
        self.with(|v| std::mem::replace(v, val))
    }

    pub fn fetch_or(&self, val: bool, _o: Ordering) -> bool {
        self.with(|v| {
            let old = *v;
            *v = old | val;
            old
        })
    }

    pub fn fetch_and(&self, val: bool, _o: Ordering) -> bool {
        self.with(|v| {
            let old = *v;
            *v = old & val;
            old
        })
    }

    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        _success: Ordering,
        _failure: Ordering,
    ) -> Result<bool, bool> {
        self.with(|v| {
            if *v == current {
                *v = new;
                Ok(current)
            } else {
                Err(*v)
            }
        })
    }

    pub fn into_inner(self) -> bool {
        self.v.into_inner()
    }

    pub fn get_mut(&mut self) -> &mut bool {
        self.v.get_mut()
    }
}

impl Default for AtomicBool {
    fn default() -> Self {
        Self::new(false)
    }
}

impl fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // SAFETY: shared debug read, as for the integer atomics.
        f.debug_tuple("AtomicBool").field(unsafe { &*self.v.get() }).finish()
    }
}
