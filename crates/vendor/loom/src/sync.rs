//! Model-checked synchronization primitives: `Mutex`, `Condvar` and the
//! atomics, API-compatible with their `std::sync` counterparts.
//!
//! Every operation is a scheduling point, so the explorer can interleave
//! threads at exactly the places real hardware can. Memory orderings are
//! accepted and *ignored*: the shim explores interleavings of sequentially
//! consistent operations (it finds lost wakeups, double releases, ordering
//! and atomicity violations, but not weak-memory reorderings — see the
//! crate docs).

use std::cell::UnsafeCell;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::AtomicBool as HostAtomicBool;
use std::sync::atomic::Ordering as HostOrdering;
use std::time::Duration;

use crate::rt::{self, Block};

/// Re-exports shared with `std`: reference counting needs no modeling
/// beyond the scheduling points of the operations on the shared value.
pub use std::sync::{Arc, LockResult, PoisonError};

pub mod atomic;

/// A model-checked mutual-exclusion lock with `std`-style poisoning.
pub struct Mutex<T: ?Sized> {
    id: usize,
    /// Host atomics for the bookkeeping bits: the scheduler serializes all
    /// access, the atomics just avoid `unsafe` on the flags themselves.
    locked: HostAtomicBool,
    poisoned: HostAtomicBool,
    data: UnsafeCell<T>,
}

// SAFETY: the scheduler runs exactly one model thread at a time and hands
// the baton over through a host mutex/condvar pair, so all access to
// `data` is serialized and ordered; the lock discipline additionally
// guarantees exclusive references are unique.
unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    /// Creates the lock. Must be called inside `loom::model`.
    pub fn new(value: T) -> Self {
        Mutex {
            id: rt::with_ctx(|exec, _| exec.next_obj_id()),
            locked: HostAtomicBool::new(false),
            poisoned: HostAtomicBool::new(false),
            data: UnsafeCell::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> LockResult<T> {
        let value = self.data.into_inner();
        if self.poisoned.load(HostOrdering::Relaxed) {
            Err(PoisonError::new(value))
        } else {
            Ok(value)
        }
    }

    /// Acquires the lock, blocking (in model time) until it is free.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        rt::with_ctx(|exec, me| {
            exec.preemption_point(me);
            while self.locked.swap(true, HostOrdering::Relaxed) {
                exec.block_on(me, Block::Mutex(self.id));
            }
        });
        let guard = MutexGuard { lock: self };
        if self.poisoned.load(HostOrdering::Relaxed) {
            Err(PoisonError::new(guard))
        } else {
            Ok(guard)
        }
    }

    /// Whether a thread panicked while holding the lock.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(HostOrdering::Relaxed)
    }
}

impl<T: ?Sized> Mutex<T> {
    fn release(&self) {
        if std::thread::panicking() {
            self.poisoned.store(true, HostOrdering::Relaxed);
        }
        self.locked.store(false, HostOrdering::Relaxed);
        rt::with_ctx(|exec, _| exec.unblock_all(Block::Mutex(self.id)));
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").field("id", &self.id).finish_non_exhaustive()
    }
}

/// The guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard proves exclusive scheduler-granted ownership.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as above; `&mut self` makes the exclusive borrow unique.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.release();
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// The result of a [`Condvar::wait_timeout`] model wait. The shim never
/// reports a timeout (durations are not modeled; a wait nobody will ever
/// notify is reported as a model deadlock instead).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait timed out (always false in the model).
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A model-checked condition variable.
///
/// `notify_one` is modeled as `notify_all`: condition variables permit
/// spurious wakeups, so waking more waiters than strictly necessary is a
/// legal (conservative) implementation that explores a superset of the
/// single-wakeup behaviors.
pub struct Condvar {
    id: usize,
}

impl Condvar {
    /// Creates the condvar. Must be called inside `loom::model`.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Condvar { id: rt::with_ctx(|exec, _| exec.next_obj_id()) }
    }

    /// Releases the guard's lock, waits for a notification, reacquires.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let lock = guard.lock;
        // Release and register atomically with respect to other model
        // threads: no scheduling point separates the drop from the block.
        drop(guard);
        rt::with_ctx(|exec, me| exec.block_on(me, Block::Condvar(self.id)));
        lock.lock()
    }

    /// Like [`Condvar::wait`], but with a (non-modeled) timeout: the shim
    /// waits exactly like `wait` and never reports a timeout.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        _dur: Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        match self.wait(guard) {
            Ok(g) => Ok((g, WaitTimeoutResult(false))),
            Err(p) => Err(PoisonError::new((p.into_inner(), WaitTimeoutResult(false)))),
        }
    }

    /// Wakes every waiter (they still contend to reacquire the mutex).
    pub fn notify_all(&self) {
        rt::with_ctx(|exec, _| exec.unblock_all(Block::Condvar(self.id)));
    }

    /// Wakes at least one waiter (modeled as `notify_all`, see the type
    /// docs).
    pub fn notify_one(&self) {
        self.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").field("id", &self.id).finish()
    }
}
