//! The execution engine: a cooperative scheduler over real OS threads.
//!
//! Exactly one model thread runs at any instant; every synchronization
//! operation in the shimmed primitives calls back into the scheduler, which
//! either lets the thread continue or hands the baton to a peer. Each such
//! decision among >1 candidates is a *choice point*; the explorer in
//! `lib.rs` drives a depth-first search over all choice sequences (within
//! the configured preemption bound), so a model run visits every
//! schedule-distinguishable interleaving of its synchronization operations.
//!
//! Cross-thread memory safety: model threads only touch shared model state
//! (the `UnsafeCell` payloads of the shimmed primitives) while holding the
//! baton, and the baton itself is handed over through a host mutex/condvar
//! pair — every access is therefore ordered by a happens-before edge
//! through the scheduler lock.

use std::cell::RefCell;
use std::sync::{Arc, Condvar as HostCondvar, Mutex as HostMutex, PoisonError};

/// What a model thread can be blocked on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Block {
    /// Waiting to acquire the shim mutex with this id.
    Mutex(usize),
    /// Waiting for a notification on the shim condvar with this id.
    Condvar(usize),
    /// Waiting for the model thread with this id to finish.
    Join(usize),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ThState {
    /// Schedulable (possibly running, when `current` points at it).
    Ready,
    /// Parked until the blocking resource is released.
    Blocked(Block),
    /// The thread body returned (or panicked and was caught).
    Done,
}

/// One decision the scheduler made: how many candidates there were and
/// which index was taken. The explorer backtracks over these.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ChoiceRec {
    pub(crate) total: usize,
    pub(crate) chosen: usize,
}

#[derive(Debug)]
struct Sched {
    threads: Vec<ThState>,
    /// The thread holding the baton (`usize::MAX` when the execution is
    /// over or failed).
    current: usize,
    /// Choice prefix to replay (from the explorer).
    replay: Vec<usize>,
    /// Choices actually taken this execution.
    taken: Vec<ChoiceRec>,
    pos: usize,
    preemptions_left: usize,
    objs: usize,
    /// Fatal model failure (deadlock); set once, ends the execution.
    failure: Option<String>,
    /// Panic messages of threads whose panic was not consumed by `join`.
    panics: Vec<(usize, String)>,
    claimed: Vec<usize>,
}

/// One model execution: the scheduler plus the host-thread handles of
/// every model thread spawned during it.
pub(crate) struct Execution {
    sched: HostMutex<Sched>,
    cv: HostCondvar,
    handles: HostMutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    static CTX: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

/// Runs `f` with the current model thread's execution and id. Panics when
/// called from outside a `loom::model` run.
pub(crate) fn with_ctx<R>(f: impl FnOnce(&Arc<Execution>, usize) -> R) -> R {
    CTX.with(|c| {
        let b = c.borrow();
        let (exec, tid) = b.as_ref().expect("loom primitive used outside loom::model");
        f(exec, *tid)
    })
}

pub(crate) fn set_ctx(exec: Arc<Execution>, tid: usize) {
    CTX.with(|c| *c.borrow_mut() = Some((exec, tid)));
}

fn lock(m: &HostMutex<Sched>) -> std::sync::MutexGuard<'_, Sched> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Execution {
    pub(crate) fn new(replay: Vec<usize>, preemption_budget: usize) -> Arc<Self> {
        Arc::new(Execution {
            sched: HostMutex::new(Sched {
                threads: Vec::new(),
                current: 0,
                replay,
                taken: Vec::new(),
                pos: 0,
                preemptions_left: preemption_budget,
                objs: 0,
                failure: None,
                panics: Vec::new(),
                claimed: Vec::new(),
            }),
            cv: HostCondvar::new(),
            handles: HostMutex::new(Vec::new()),
        })
    }

    pub(crate) fn next_obj_id(&self) -> usize {
        let mut s = lock(&self.sched);
        s.objs += 1;
        s.objs
    }

    /// Registers a new model thread and returns its id. The thread starts
    /// `Ready` but does not run until scheduled.
    pub(crate) fn register(&self) -> usize {
        let mut s = lock(&self.sched);
        s.threads.push(ThState::Ready);
        s.threads.len() - 1
    }

    pub(crate) fn add_handle(&self, h: std::thread::JoinHandle<()>) {
        self.handles.lock().unwrap_or_else(PoisonError::into_inner).push(h);
    }

    pub(crate) fn take_handles(&self) -> Vec<std::thread::JoinHandle<()>> {
        std::mem::take(&mut *self.handles.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Picks `options[i]` per the replay prefix (or the first option past
    /// it) and records the decision. Single-option calls record nothing.
    fn choose(s: &mut Sched, total: usize) -> usize {
        if total <= 1 {
            return 0;
        }
        let idx = if s.pos < s.replay.len() { s.replay[s.pos] } else { 0 };
        debug_assert!(idx < total, "replay index out of range");
        s.taken.push(ChoiceRec { total, chosen: idx });
        s.pos += 1;
        idx
    }

    fn runnable_except(s: &Sched, me: usize) -> Vec<usize> {
        (0..s.threads.len()).filter(|&t| t != me && s.threads[t] == ThState::Ready).collect()
    }

    /// A preemption point: the running thread offers the scheduler the
    /// chance to switch to any other runnable thread (spending one unit of
    /// the preemption budget). Called at the start of every shimmed
    /// synchronization operation.
    pub(crate) fn preemption_point(&self, me: usize) {
        let mut s = lock(&self.sched);
        self.check_failure(&s);
        let others = Self::runnable_except(&s, me);
        if others.is_empty() || s.preemptions_left == 0 {
            return;
        }
        let mut options = vec![me];
        options.extend(others);
        let idx = Self::choose(&mut s, options.len());
        let next = options[idx];
        if next != me {
            s.preemptions_left -= 1;
            s.current = next;
            self.cv.notify_all();
            self.wait_turn(s, me);
        }
    }

    /// Blocks the running thread on `b` and hands the baton over. Returns
    /// once the thread has been unblocked *and* rescheduled.
    pub(crate) fn block_on(&self, me: usize, b: Block) {
        let mut s = lock(&self.sched);
        s.threads[me] = ThState::Blocked(b);
        self.schedule_next(&mut s);
        self.wait_turn(s, me);
    }

    /// Marks every thread blocked on `b` runnable (they still need to be
    /// scheduled before they run). The caller keeps the baton.
    pub(crate) fn unblock_all(&self, b: Block) {
        let mut s = lock(&self.sched);
        for t in &mut s.threads {
            if *t == ThState::Blocked(b) {
                *t = ThState::Ready;
            }
        }
    }

    /// Marks the running thread finished, wakes its joiners and hands the
    /// baton to a successor. `panic_msg` carries the rendered payload when
    /// the body panicked; `join` claims it, and unclaimed panics fail the
    /// model.
    pub(crate) fn finish(&self, me: usize, panic_msg: Option<String>) {
        let mut s = lock(&self.sched);
        s.threads[me] = ThState::Done;
        if let Some(msg) = panic_msg {
            s.panics.push((me, msg));
        }
        for t in 0..s.threads.len() {
            if s.threads[t] == ThState::Blocked(Block::Join(me)) {
                s.threads[t] = ThState::Ready;
            }
        }
        self.schedule_next(&mut s);
    }

    /// True once the thread with id `tid` has finished.
    pub(crate) fn is_done(&self, tid: usize) -> bool {
        lock(&self.sched).threads[tid] == ThState::Done
    }

    /// Marks thread `tid`'s panic as consumed by a `join`.
    pub(crate) fn claim_panic(&self, tid: usize) {
        lock(&self.sched).claimed.push(tid);
    }

    /// Hands the baton to a runnable thread (a scheduling choice when
    /// several are), or ends/fails the execution when none is.
    fn schedule_next(&self, s: &mut Sched) {
        if s.failure.is_some() {
            self.cv.notify_all();
            return;
        }
        let runnable: Vec<usize> =
            (0..s.threads.len()).filter(|&t| s.threads[t] == ThState::Ready).collect();
        if runnable.is_empty() {
            if s.threads.iter().any(|t| matches!(t, ThState::Blocked(_))) {
                // Every live thread is blocked: a real deadlock in the
                // model. Wake everyone so they can unwind out.
                let detail: Vec<String> = s
                    .threads
                    .iter()
                    .enumerate()
                    .filter_map(|(t, st)| match st {
                        ThState::Blocked(b) => Some(format!("thread {t} blocked on {b:?}")),
                        _ => None,
                    })
                    .collect();
                s.failure = Some(format!("deadlock: {}", detail.join(", ")));
                for t in &mut s.threads {
                    if matches!(t, ThState::Blocked(_)) {
                        *t = ThState::Ready;
                    }
                }
            }
            s.current = usize::MAX;
            self.cv.notify_all();
            return;
        }
        let idx = Self::choose(s, runnable.len());
        s.current = runnable[idx];
        self.cv.notify_all();
    }

    /// Parks the calling host thread until the scheduler hands it the
    /// baton. Panics (unwinding the model thread) when the execution has
    /// failed.
    fn wait_turn(&self, mut s: std::sync::MutexGuard<'_, Sched>, me: usize) {
        loop {
            self.check_failure(&s);
            if s.current == me && s.threads[me] == ThState::Ready {
                return;
            }
            s = self.cv.wait(s).unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn check_failure(&self, s: &Sched) {
        if let Some(msg) = &s.failure {
            let msg = msg.clone();
            // The panic unwinds the model thread's user stack; shim guards
            // dropped on the way out only mutate scheduler state.
            std::panic::panic_any(ExecutionFailed(msg));
        }
    }

    /// Called by a freshly spawned model thread before running its body.
    pub(crate) fn wait_first_turn(&self, me: usize) {
        let s = lock(&self.sched);
        self.wait_turn(s, me);
    }

    /// The model failure recorded this execution, if any.
    pub(crate) fn failure(&self) -> Option<String> {
        lock(&self.sched).failure.clone()
    }

    /// Panic messages of threads whose panic was never claimed by a join.
    pub(crate) fn unclaimed_panics(&self) -> Vec<(usize, String)> {
        let s = lock(&self.sched);
        s.panics.iter().filter(|(t, _)| !s.claimed.contains(t)).cloned().collect()
    }

    /// The choice sequence this execution took (for the explorer).
    pub(crate) fn taken(&self) -> Vec<ChoiceRec> {
        lock(&self.sched).taken.clone()
    }
}

/// The payload `check_failure` unwinds model threads with; recognized (and
/// swallowed) by the thread wrapper so a deadlock is reported once, as the
/// model's failure, not as dozens of secondary panics.
pub(crate) struct ExecutionFailed(#[allow(dead_code)] pub(crate) String);
