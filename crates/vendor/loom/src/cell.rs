//! Model-checked interior mutability: [`UnsafeCell`].
//!
//! Mirrors `loom::cell::UnsafeCell`'s closure-based API: instead of
//! handing out a raw pointer to keep (as `std::cell::UnsafeCell::get`
//! does), the cell lends the pointer to a closure, bracketed by a
//! scheduling point so the explorer can interleave the access with every
//! other synchronization operation.
//!
//! Divergence from real loom, matching the crate-level policy: real loom
//! tracks causality and fails the model when two threads access the cell
//! without a happens-before edge. This shim serializes all model threads
//! through the scheduler baton, so overlapping access cannot physically
//! occur and is not detected; the shim finds *interleaving* bugs (a
//! consumer observing a slot before the producer's publishing store, lost
//! or duplicated values), not data-race declarations. Algorithms checked
//! here must keep their happens-before argument in source comments.

use std::fmt;

use crate::rt;

/// Model-checked counterpart of `loom::cell::UnsafeCell`.
pub struct UnsafeCell<T> {
    v: std::cell::UnsafeCell<T>,
}

// SAFETY: every access runs inside `with`/`with_mut`, which execute while
// the calling model thread holds the scheduler baton; all accesses are
// therefore serialized and ordered through the scheduler lock (see
// `rt.rs`).
unsafe impl<T: Send> Send for UnsafeCell<T> {}
unsafe impl<T: Send> Sync for UnsafeCell<T> {}

impl<T> UnsafeCell<T> {
    /// Creates the cell (usable outside a model; accesses are not).
    pub fn new(v: T) -> Self {
        Self { v: std::cell::UnsafeCell::new(v) }
    }

    /// Lends the closure a shared pointer to the contents, at a scheduling
    /// point. The pointer must not escape the closure.
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        rt::with_ctx(|exec, me| exec.preemption_point(me));
        f(self.v.get())
    }

    /// Lends the closure an exclusive pointer to the contents, at a
    /// scheduling point. The pointer must not escape the closure.
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        rt::with_ctx(|exec, me| exec.preemption_point(me));
        f(self.v.get())
    }

    pub fn into_inner(self) -> T {
        self.v.into_inner()
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.v.get_mut()
    }
}

impl<T: Default> Default for UnsafeCell<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T> fmt::Debug for UnsafeCell<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("UnsafeCell { .. }")
    }
}
