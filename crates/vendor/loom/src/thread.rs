//! Model-thread management: `spawn`, `JoinHandle`, and a mirror of
//! `std::thread::scope` so scoped worker pools run unchanged under the
//! model checker.

use std::any::Any;
use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex as HostMutex, PoisonError};

use crate::rt::{self, Block, Execution, ExecutionFailed};

/// Re-export of the host result type (`Err` carries the panic payload).
pub use std::thread::Result;

type Payload = Box<dyn Any + Send + 'static>;
type Erased = Box<dyn Any + Send + 'static>;
type Slot = Arc<HostMutex<Option<std::result::Result<Erased, Payload>>>>;

/// Renders a panic payload for the unclaimed-panic report.
fn render(payload: &Payload) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Spawns `body` as a new model thread (shared plumbing for `spawn`,
/// `Scope::spawn` and the root thread). Returns the model-thread id and
/// the type-erased result slot.
pub(crate) fn spawn_model(
    exec: &Arc<Execution>,
    body: Box<dyn FnOnce() -> Erased + Send + 'static>,
) -> (usize, Slot) {
    let tid = exec.register();
    let slot: Slot = Arc::new(HostMutex::new(None));
    let exec2 = Arc::clone(exec);
    let slot2 = Arc::clone(&slot);
    let host = std::thread::Builder::new()
        .name(format!("loom-{tid}"))
        .spawn(move || {
            rt::set_ctx(Arc::clone(&exec2), tid);
            exec2.wait_first_turn(tid);
            let result = catch_unwind(AssertUnwindSafe(body));
            let panic_msg = match &result {
                Ok(_) => None,
                // A teardown unwind after a recorded model failure is not a
                // user panic; the model reports the failure itself.
                Err(p) if p.is::<ExecutionFailed>() => None,
                Err(p) => Some(render(p)),
            };
            *slot2.lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
            exec2.finish(tid, panic_msg);
        })
        .expect("host thread spawn");
    exec.add_handle(host);
    (tid, slot)
}

/// Blocks the calling model thread until `tid` finishes, then takes its
/// result. A panicked result is marked claimed (so the model does not
/// re-report it).
fn join_model(tid: usize, slot: &Slot) -> std::result::Result<Erased, Payload> {
    rt::with_ctx(|exec, me| {
        exec.preemption_point(me);
        while !exec.is_done(tid) {
            exec.block_on(me, Block::Join(tid));
        }
        let result = slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
            .expect("model thread finished without a result");
        if result.is_err() {
            exec.claim_panic(tid);
        }
        result
    })
}

fn downcast<T: 'static>(r: std::result::Result<Erased, Payload>) -> Result<T> {
    r.map(|b| *b.downcast::<T>().expect("model thread result type"))
}

/// The model counterpart of `std::thread::JoinHandle`.
#[derive(Debug)]
pub struct JoinHandle<T> {
    tid: usize,
    slot: Slot,
    _t: PhantomData<fn() -> T>,
}

impl<T: 'static> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result (`Err` is the
    /// panic payload, exactly like `std`).
    pub fn join(self) -> Result<T> {
        downcast(join_model(self.tid, &self.slot))
    }
}

/// Spawns a model thread. Must be called inside `loom::model`.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    rt::with_ctx(|exec, me| {
        let (tid, slot) = spawn_model(exec, Box::new(move || Box::new(f()) as Erased));
        // The child is now schedulable; give the explorer the chance to
        // run it before the parent continues.
        exec.preemption_point(me);
        JoinHandle { tid, slot, _t: PhantomData }
    })
}

/// A scheduling point: offers the scheduler the chance to run another
/// thread.
pub fn yield_now() {
    rt::with_ctx(|exec, me| exec.preemption_point(me));
}

/// Model "sleep": durations are not modeled, so this is just a scheduling
/// point.
pub fn sleep(_dur: std::time::Duration) {
    yield_now();
}

/// The model counterpart of `std::thread::Scope`.
///
/// Every thread spawned through it is joined before [`scope`] returns
/// (explicitly via [`ScopedJoinHandle::join`], or implicitly at scope
/// exit), which is what makes the lifetime erasure inside sound.
pub struct Scope<'scope, 'env: 'scope> {
    exec: Arc<Execution>,
    /// Spawned threads not yet claimed by an explicit join.
    unjoined: HostMutex<Vec<(usize, Slot)>>,
    _scope: PhantomData<&'scope mut &'scope ()>,
    _env: PhantomData<&'env mut &'env ()>,
}

/// The model counterpart of `std::thread::ScopedJoinHandle`.
///
/// The value travels through a typed side-slot rather than the `Any`
/// erasure `JoinHandle` uses, because scoped results need not be
/// `'static`.
pub struct ScopedJoinHandle<'scope, T> {
    tid: usize,
    slot: Slot,
    value: Arc<HostMutex<Option<T>>>,
    scope_unjoined: &'scope HostMutex<Vec<(usize, Slot)>>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Waits for the thread to finish and returns its result.
    pub fn join(self) -> Result<T> {
        self.scope_unjoined
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .retain(|(t, _)| *t != self.tid);
        join_model(self.tid, &self.slot).map(|_| {
            self.value
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .take()
                .expect("scoped model thread finished without a value")
        })
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped model thread; the closure may borrow from the
    /// enclosing scope exactly as with `std::thread::scope`.
    pub fn spawn<F, T>(&'scope self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let value: Arc<HostMutex<Option<T>>> = Arc::new(HostMutex::new(None));
        let value2 = Arc::clone(&value);
        let boxed: Box<dyn FnOnce() -> Erased + Send + 'scope> = Box::new(move || {
            let v = f();
            *value2.lock().unwrap_or_else(PoisonError::into_inner) = Some(v);
            Box::new(()) as Erased
        });
        // SAFETY: the scope joins every spawned thread before `scope`
        // returns (explicit join or the exit loop below), so the closure
        // and its captures outlive the thread despite the erased lifetime
        // — the same argument `std::thread::scope` makes.
        let boxed: Box<dyn FnOnce() -> Erased + Send + 'static> =
            unsafe { std::mem::transmute(boxed) };
        let (tid, slot) = spawn_model(&self.exec, boxed);
        self.unjoined.lock().unwrap_or_else(PoisonError::into_inner).push((tid, Arc::clone(&slot)));
        rt::with_ctx(|exec, me| exec.preemption_point(me));
        ScopedJoinHandle { tid, slot, value, scope_unjoined: &self.unjoined }
    }
}

/// Mirror of `std::thread::scope`: runs `f` with a [`Scope`], joins every
/// still-unjoined spawned thread on exit, and re-raises the first panic of
/// an implicitly joined thread.
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> T,
{
    let exec = rt::with_ctx(|exec, _| Arc::clone(exec));
    let scope = Scope {
        exec,
        unjoined: HostMutex::new(Vec::new()),
        _scope: PhantomData,
        _env: PhantomData,
    };
    // The scope body may itself panic (e.g. a worker panic re-raised at an
    // explicit join); every spawned thread must still be joined before the
    // borrowed environment is released.
    let out = catch_unwind(AssertUnwindSafe(|| f(&scope)));
    let unjoined =
        std::mem::take(&mut *scope.unjoined.lock().unwrap_or_else(PoisonError::into_inner));
    let mut first_panic: Option<Payload> = None;
    for (tid, slot) in unjoined {
        if let Err(p) = join_model(tid, &slot) {
            first_panic.get_or_insert(p);
        }
    }
    match out {
        Err(p) => std::panic::resume_unwind(p),
        Ok(v) => {
            if let Some(p) = first_panic {
                std::panic::resume_unwind(p);
            }
            v
        }
    }
}
