//! Offline, API-compatible subset of the [loom] model checker, vendored so
//! the workspace can model-check `parsim-runtime` without network access.
//!
//! The shim runs a user closure many times under a cooperative scheduler
//! (`rt`) that permutes the order of synchronization operations
//! (mutexes, condvars, atomics, spawns/joins), driving a depth-first
//! search over every scheduling decision within a configurable preemption
//! bound (CHESS-style context bounding). Within that bound the search is
//! exhaustive: every schedule-distinguishable interleaving of the model's
//! synchronization operations is executed, and assertion failures,
//! unclaimed panics, and deadlocks (including lost wakeups) fail the run
//! with the schedule that produced them.
//!
//! Known divergences from real loom, by design:
//!
//! - **No weak-memory modeling.** `Ordering` arguments are accepted and
//!   ignored; every atomic behaves sequentially consistently. The shim
//!   finds interleaving bugs (races on invariants, lost wakeups, double
//!   releases), not `Relaxed`-vs-`Acquire` reordering bugs.
//! - **Timeouts never fire.** `Condvar::wait_timeout` waits like `wait`;
//!   a wait that nothing will ever notify is reported as a deadlock,
//!   which is the model-level meaning of "this would have timed out".
//! - **`notify_one` wakes all waiters** — sound, since condvars permit
//!   spurious wakeups, and it explores a superset of single-wakeup
//!   behaviors.
//!
//! [loom]: https://docs.rs/loom

pub mod cell;
mod rt;
pub mod sync;
pub mod thread;

pub use model::model;

pub mod model {
    //! The exploration driver: [`model`] and [`Builder`].

    use std::panic::resume_unwind;
    use std::sync::{Arc, Mutex as HostMutex, PoisonError};

    use crate::rt::{ChoiceRec, Execution, ExecutionFailed};
    use crate::thread::spawn_model;

    /// Exploration configuration, mirroring `loom::model::Builder`.
    #[derive(Debug, Clone)]
    #[non_exhaustive]
    pub struct Builder {
        /// Maximum number of forced preemptions per execution (`None` =
        /// unbounded). Defaults to 2, overridable with
        /// `LOOM_MAX_PREEMPTIONS`.
        pub preemption_bound: Option<usize>,
        /// Hard cap on explored executions, overridable with
        /// `LOOM_MAX_ITERATIONS`; exceeding it fails the model rather than
        /// silently truncating the search.
        pub max_iterations: usize,
    }

    impl Default for Builder {
        fn default() -> Self {
            Self::new()
        }
    }

    fn env_usize(name: &str) -> Option<usize> {
        std::env::var(name).ok()?.parse().ok()
    }

    impl Builder {
        /// A builder with the default bounds (see the field docs).
        pub fn new() -> Self {
            Builder {
                preemption_bound: Some(env_usize("LOOM_MAX_PREEMPTIONS").unwrap_or(2)),
                max_iterations: env_usize("LOOM_MAX_ITERATIONS").unwrap_or(200_000),
            }
        }

        /// Explores every schedule of `f` within the configured bounds.
        /// Panics (failing the enclosing test) on the first assertion
        /// failure, unclaimed panic, deadlock, or bound overrun.
        pub fn check<F>(&self, f: F)
        where
            F: Fn() + Sync + Send + 'static,
        {
            let f = Arc::new(f);
            let budget = self.preemption_bound.unwrap_or(usize::MAX);
            let mut replay: Vec<usize> = Vec::new();
            let mut iterations = 0usize;
            loop {
                iterations += 1;
                assert!(
                    iterations <= self.max_iterations,
                    "loom: exceeded {} iterations; raise LOOM_MAX_ITERATIONS or \
                     shrink the model",
                    self.max_iterations
                );
                let exec = Execution::new(replay.clone(), budget);
                let body = Arc::clone(&f);
                let (_root, root_slot) = spawn_model(
                    &exec,
                    Box::new(move || {
                        body();
                        Box::new(()) as _
                    }),
                );
                // Join every host thread; model threads spawned while we
                // join keep appending handles, so drain until quiescent.
                loop {
                    let handles = exec.take_handles();
                    if handles.is_empty() {
                        break;
                    }
                    for h in handles {
                        let _ = h.join();
                    }
                }
                if let Some(msg) = exec.failure() {
                    panic!("loom: model failed after {iterations} executions: {msg}");
                }
                if let Some(Err(payload)) = take_slot(&root_slot) {
                    if !payload.is::<ExecutionFailed>() {
                        eprintln!("loom: model panicked on execution {iterations}");
                        resume_unwind(payload);
                    }
                }
                let unclaimed = exec.unclaimed_panics();
                if let Some((tid, msg)) = unclaimed.into_iter().next() {
                    panic!(
                        "loom: thread {tid} panicked (never joined) on execution \
                         {iterations}: {msg}"
                    );
                }
                match advance(exec.taken()) {
                    Some(next) => replay = next,
                    None => break,
                }
            }
        }
    }

    type Slot =
        Arc<HostMutex<Option<std::thread::Result<Box<dyn std::any::Any + Send + 'static>>>>>;

    fn take_slot(slot: &Slot) -> Option<std::thread::Result<Box<dyn std::any::Any + Send>>> {
        slot.lock().unwrap_or_else(PoisonError::into_inner).take()
    }

    /// Computes the next replay prefix from the choices the last execution
    /// took: backtrack to the deepest decision with an unexplored branch
    /// and take its next option. `None` when the space is exhausted.
    fn advance(mut taken: Vec<ChoiceRec>) -> Option<Vec<usize>> {
        while let Some(last) = taken.pop() {
            if last.chosen + 1 < last.total {
                let mut replay: Vec<usize> = taken.iter().map(|c| c.chosen).collect();
                replay.push(last.chosen + 1);
                return Some(replay);
            }
        }
        None
    }

    /// Explores every schedule of `f` with the default [`Builder`] bounds.
    pub fn model<F>(f: F)
    where
        F: Fn() + Sync + Send + 'static,
    {
        Builder::new().check(f);
    }
}
