//! The simulated-time axis.

use std::fmt::{self, Display};
use std::ops::Add;

use parsim_netlist::Delay;

/// A point in simulated time, measured in ticks.
///
/// `VirtualTime` is a total order with a greatest element,
/// [`VirtualTime::INFINITY`], used as the timestamp of "no more events"
/// in lower-bound computations (null messages, global virtual time).
///
/// Adding a [`Delay`] advances time; the addition saturates at infinity so
/// lookahead arithmetic never wraps.
///
/// # Examples
///
/// ```
/// use parsim_event::VirtualTime;
/// use parsim_netlist::Delay;
///
/// let t = VirtualTime::ZERO + Delay::new(10);
/// assert_eq!(t, VirtualTime::new(10));
/// assert!(t < VirtualTime::INFINITY);
/// assert_eq!(VirtualTime::INFINITY + Delay::new(5), VirtualTime::INFINITY);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct VirtualTime(u64);

impl VirtualTime {
    /// The start of simulated time.
    pub const ZERO: VirtualTime = VirtualTime(0);
    /// The timestamp larger than every real event time.
    pub const INFINITY: VirtualTime = VirtualTime(u64::MAX);

    /// Creates a time at the given tick.
    ///
    /// # Panics
    ///
    /// Panics if `ticks` is `u64::MAX`, which is reserved for
    /// [`VirtualTime::INFINITY`].
    pub fn new(ticks: u64) -> Self {
        assert!(ticks != u64::MAX, "u64::MAX is reserved for VirtualTime::INFINITY");
        VirtualTime(ticks)
    }

    /// The tick count.
    pub fn ticks(self) -> u64 {
        self.0
    }

    /// Returns `true` for the infinity sentinel.
    pub fn is_infinite(self) -> bool {
        self == VirtualTime::INFINITY
    }

    /// The smaller of two times.
    pub fn min(self, other: VirtualTime) -> VirtualTime {
        std::cmp::min(self, other)
    }

    /// The larger of two times.
    pub fn max(self, other: VirtualTime) -> VirtualTime {
        std::cmp::max(self, other)
    }
}

impl Add<Delay> for VirtualTime {
    type Output = VirtualTime;

    fn add(self, d: Delay) -> VirtualTime {
        if self.is_infinite() {
            return self;
        }
        match self.0.checked_add(d.ticks()) {
            Some(t) if t != u64::MAX => VirtualTime(t),
            _ => VirtualTime::INFINITY,
        }
    }
}

impl Display for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_infinite() {
            f.write_str("∞")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

impl From<u64> for VirtualTime {
    fn from(ticks: u64) -> Self {
        VirtualTime::new(ticks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering() {
        assert!(VirtualTime::ZERO < VirtualTime::new(1));
        assert!(VirtualTime::new(100) < VirtualTime::INFINITY);
        assert_eq!(VirtualTime::new(3).min(VirtualTime::new(5)), VirtualTime::new(3));
        assert_eq!(VirtualTime::new(3).max(VirtualTime::new(5)), VirtualTime::new(5));
    }

    #[test]
    fn delay_addition_saturates() {
        assert_eq!(VirtualTime::new(4) + Delay::new(3), VirtualTime::new(7));
        assert_eq!(VirtualTime::INFINITY + Delay::new(3), VirtualTime::INFINITY);
        assert_eq!(VirtualTime::new(u64::MAX - 1) + Delay::new(10), VirtualTime::INFINITY);
    }

    #[test]
    fn display() {
        assert_eq!(VirtualTime::new(9).to_string(), "9");
        assert_eq!(VirtualTime::INFINITY.to_string(), "∞");
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn cannot_construct_infinity_directly() {
        VirtualTime::new(u64::MAX);
    }
}
