//! A calendar-queue pending event set.

use std::fmt::Debug;

use crate::queue::Keyed;
use crate::{Event, EventQueue, VirtualTime};

/// A calendar queue (R. Brown, CACM 1988): the pending event set behind many
/// production logic simulators.
///
/// Events are hashed by timestamp into an array of *days* (buckets) that
/// wraps around every *year* (`buckets × width` ticks); dequeue scans forward
/// from the current day. With a well-chosen width, both operations run in
/// amortized `O(1)`, beating the binary heap on the high event rates typical
/// of gate-level simulation.
///
/// The structure resizes itself (doubling/halving the day count and
/// re-estimating the width from the current population's time span) as the
/// population grows and shrinks. Within a day, events are kept sorted by the
/// same deterministic `(time, net, sequence)` key the binary heap uses, so
/// the two implementations drain identically. Days are stored *descending*
/// (minimum key at the back) so a dequeue is a `Vec::pop` — O(1) even when a
/// resize packs thousands of same-timestamp events into one day.
///
/// # Examples
///
/// ```
/// use parsim_event::{CalendarQueue, Event, EventQueue, VirtualTime};
/// use parsim_logic::Bit;
/// use parsim_netlist::GateId;
///
/// let mut q = CalendarQueue::new();
/// for t in [40u64, 5, 17, 5, 99] {
///     q.push(Event::new(VirtualTime::new(t), GateId::new(0), Bit::One));
/// }
/// let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.time.ticks()).collect();
/// assert_eq!(order, vec![5, 5, 17, 40, 99]);
/// ```
#[derive(Debug)]
pub struct CalendarQueue<V> {
    /// Each day holds events sorted *descending* by key: the day's earliest
    /// event is at the back, so dequeues pop from the back in O(1) instead
    /// of shifting the whole day with a front removal.
    days: Vec<Vec<Keyed<V>>>,
    /// Ticks per day (≥ 1).
    width: u64,
    size: usize,
    /// Day the dequeue cursor is on.
    cursor: usize,
    /// Absolute tick where the cursor's current day-in-year ends.
    cursor_top: u64,
    next_seq: u64,
}

const INITIAL_DAYS: usize = 4;

impl<V: Copy + Debug> CalendarQueue<V> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        CalendarQueue {
            days: vec![Vec::new(); INITIAL_DAYS],
            width: 1,
            size: 0,
            cursor: 0,
            cursor_top: 1,
            next_seq: 0,
        }
    }

    fn day_of(&self, time: VirtualTime) -> usize {
        ((time.ticks() / self.width) % self.days.len() as u64) as usize
    }

    fn insert(&mut self, keyed: Keyed<V>) {
        let day = self.day_of(keyed.event.time);
        let bucket = &mut self.days[day];
        // Descending order: everything with a larger key stays in front.
        let pos = bucket.partition_point(|k| k.key() > keyed.key());
        bucket.insert(pos, keyed);
    }

    /// Moves the cursor to the year/day containing `time`.
    fn seek(&mut self, time: VirtualTime) {
        let t = time.ticks();
        self.cursor = self.day_of(time);
        self.cursor_top = (t / self.width + 1) * self.width;
    }

    fn resize(&mut self, new_days: usize) {
        // Re-estimate the day width from the live population's span so that
        // events spread over roughly one event per day (Brown's heuristic,
        // simplified: span / size, clamped to ≥ 1).
        let mut min_t = u64::MAX;
        let mut max_t = 0u64;
        for k in self.days.iter().flatten() {
            let t = k.event.time.ticks();
            min_t = min_t.min(t);
            max_t = max_t.max(t);
        }
        let span = max_t.saturating_sub(min_t);
        self.width = (span / self.size.max(1) as u64).max(1);

        let old: Vec<Keyed<V>> = self.days.iter_mut().flat_map(std::mem::take).collect();
        self.days = vec![Vec::new(); new_days];
        for k in old {
            self.insert(k);
        }
        // Restart the cursor at the earliest event.
        if let Some(t) = self.min_time() {
            self.seek(t);
        }
    }

    fn min_time(&self) -> Option<VirtualTime> {
        self.days.iter().filter_map(|d| d.last()).map(|k| k.event.time).min()
    }

    /// The min event across all days, by full key (used when a whole year is
    /// empty and we must jump ahead).
    fn min_key_day(&self) -> Option<usize> {
        let mut best: Option<(usize, (VirtualTime, usize, u64))> = None;
        for (i, day) in self.days.iter().enumerate() {
            if let Some(k) = day.last() {
                let key = k.key();
                if best.is_none_or(|(_, bk)| key < bk) {
                    best = Some((i, key));
                }
            }
        }
        best.map(|(i, _)| i)
    }
}

impl<V: Copy + Debug> Default for CalendarQueue<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Copy + Debug> EventQueue<V> for CalendarQueue<V> {
    fn push(&mut self, event: Event<V>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.insert(Keyed { event, seq });
        self.size += 1;
        // An event earlier than the cursor's current day (possible after
        // out-of-order scheduling) pulls the cursor back so it is not
        // skipped. The invariant "cursor day start ≤ minimum pending time"
        // holds at every operation boundary, so an event that lands before
        // the day start is *necessarily* the new global minimum — no scan
        // over the days is needed to confirm it.
        if self.size == 1 || event.time.ticks() < self.cursor_top.saturating_sub(self.width) {
            self.seek(event.time);
        }
        if self.size > 2 * self.days.len() {
            let doubled = self.days.len() * 2;
            self.resize(doubled);
        }
    }

    fn pop(&mut self) -> Option<Event<V>> {
        if self.size == 0 {
            return None;
        }
        let ndays = self.days.len();
        for _ in 0..ndays {
            let day = &mut self.days[self.cursor];
            if let Some(head) = day.last() {
                if head.event.time.ticks() < self.cursor_top {
                    let k = day.pop().expect("day nonempty");
                    self.size -= 1;
                    if self.size >= INITIAL_DAYS && self.size * 2 < self.days.len() {
                        let halved = self.days.len() / 2;
                        self.resize(halved);
                    }
                    return Some(k.event);
                }
            }
            self.cursor = (self.cursor + 1) % ndays;
            self.cursor_top += self.width;
        }
        // Scanned a whole year without a hit: jump directly to the minimum.
        let day = self.min_key_day().expect("size > 0 implies some day is nonempty");
        let k = self.days[day].pop().expect("min day nonempty");
        self.seek(k.event.time);
        self.size -= 1;
        Some(k.event)
    }

    fn peek_time(&self) -> Option<VirtualTime> {
        self.min_time()
    }

    fn len(&self) -> usize {
        self.size
    }

    fn clear(&mut self) {
        for d in &mut self.days {
            d.clear();
        }
        self.size = 0;
        self.cursor = 0;
        self.cursor_top = self.width;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim_logic::Bit;
    use parsim_netlist::GateId;

    fn ev(t: u64, n: usize) -> Event<Bit> {
        Event::new(VirtualTime::new(t), GateId::new(n), Bit::One)
    }

    #[test]
    fn pops_in_time_order_with_resizes() {
        let mut q = CalendarQueue::new();
        let times: Vec<u64> = (0..500).map(|i| (i * 7919) % 1000).collect();
        for &t in &times {
            q.push(ev(t, 0));
        }
        assert_eq!(q.len(), 500);
        let mut sorted = times.clone();
        sorted.sort_unstable();
        let drained: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.time.ticks()).collect();
        assert_eq!(drained, sorted);
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = CalendarQueue::new();
        q.push(ev(10, 0));
        q.push(ev(20, 0));
        assert_eq!(q.pop().unwrap().time.ticks(), 10);
        // push an event earlier than anything pending but later than the
        // last pop
        q.push(ev(15, 0));
        assert_eq!(q.pop().unwrap().time.ticks(), 15);
        q.push(ev(12, 0));
        assert_eq!(q.pop().unwrap().time.ticks(), 12);
        assert_eq!(q.pop().unwrap().time.ticks(), 20);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn sparse_times_trigger_year_jump() {
        let mut q = CalendarQueue::new();
        q.push(ev(1, 0));
        q.push(ev(1_000_000, 0));
        q.push(ev(3_000_000_000, 0));
        let drained: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.time.ticks()).collect();
        assert_eq!(drained, vec![1, 1_000_000, 3_000_000_000]);
    }

    #[test]
    fn matches_binary_heap_on_pseudorandom_workload() {
        use crate::BinaryHeapQueue;
        let mut cal = CalendarQueue::new();
        let mut heap = BinaryHeapQueue::new();
        let mut x: u64 = 0x2545F491;
        let mut next = move || {
            // xorshift
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for round in 0..2000u64 {
            let t = next() % 10_000;
            let n = (next() % 50) as usize;
            let e = ev(t, n);
            cal.push(e);
            heap.push(e);
            if round % 3 == 0 {
                assert_eq!(cal.pop(), heap.pop(), "divergence at round {round}");
            }
        }
        while let Some(h) = heap.pop() {
            assert_eq!(cal.pop(), Some(h));
        }
        assert_eq!(cal.pop(), None);
    }

    #[test]
    fn dense_single_day_drains_like_heap() {
        // Every event shares one timestamp, so whatever the width ends up as
        // after resizes, the whole population lives in a single day — the
        // workload that made the old front-of-Vec removal quadratic. The
        // drain must still match the binary heap event-for-event (FIFO among
        // equal timestamps, by sequence number).
        use crate::BinaryHeapQueue;
        let mut cal = CalendarQueue::new();
        let mut heap = BinaryHeapQueue::new();
        for i in 0..4000 {
            let e = ev(77, i % 13);
            cal.push(e);
            heap.push(e);
        }
        assert_eq!(cal.len(), 4000);
        for round in 0..4000 {
            assert_eq!(cal.pop(), heap.pop(), "divergence at dequeue {round}");
        }
        assert_eq!(cal.pop(), None);
    }

    #[test]
    fn interleaved_early_late_pushes_match_heap() {
        // Regression for the out-of-order push path: inserts earlier than
        // the cursor's day used to trigger a full O(days) minimum scan, and
        // now rely on the cursor-day invariant instead. Interleave early and
        // late timestamps around an advanced cursor and assert the pop order
        // is identical to the binary heap's.
        use crate::BinaryHeapQueue;
        let mut cal = CalendarQueue::new();
        let mut heap = BinaryHeapQueue::new();
        for i in 0..64u64 {
            let e = ev(1_000 + i * 3, i as usize);
            cal.push(e);
            heap.push(e);
        }
        // Advance the cursor well into the populated region.
        for _ in 0..32 {
            assert_eq!(cal.pop(), heap.pop());
        }
        for round in 0..500u64 {
            let early = ev(round % 7, (round % 29) as usize);
            let late = ev(2_000 + (round * 13) % 512, (round % 31) as usize);
            cal.push(early);
            heap.push(early);
            cal.push(late);
            heap.push(late);
            if round % 2 == 0 {
                assert_eq!(cal.pop(), heap.pop(), "divergence at round {round}");
            }
        }
        while let Some(h) = heap.pop() {
            assert_eq!(cal.pop(), Some(h));
        }
        assert_eq!(cal.pop(), None);
    }

    #[test]
    fn clear_resets() {
        let mut q = CalendarQueue::new();
        for t in 0..100 {
            q.push(ev(t, 0));
        }
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(ev(5, 0));
        assert_eq!(q.pop().unwrap().time.ticks(), 5);
    }
}
