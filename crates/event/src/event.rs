//! Events and inter-LP messages.

use std::fmt::{self, Display};

use parsim_netlist::GateId;

use crate::VirtualTime;

/// A net-value change at a point in simulated time.
///
/// `net` identifies the driving gate (nets and their drivers share ids);
/// consumers are found through the circuit's fanout adjacency when the event
/// is processed.
///
/// # Examples
///
/// ```
/// use parsim_event::{Event, VirtualTime};
/// use parsim_logic::Logic4;
/// use parsim_netlist::GateId;
///
/// let e = Event::new(VirtualTime::new(12), GateId::new(3), Logic4::One);
/// assert_eq!(e.time, VirtualTime::new(12));
/// assert_eq!(e.to_string(), "@12 g3=1");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Event<V> {
    /// When the net changes.
    pub time: VirtualTime,
    /// The net (identified by its driving gate) that changes.
    pub net: GateId,
    /// The new value.
    pub value: V,
}

impl<V> Event<V> {
    /// Creates an event.
    pub fn new(time: VirtualTime, net: GateId, value: V) -> Self {
        Event { time, net, value }
    }
}

impl<V: Display> Display for Event<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{} {}={}", self.time, self.net, self.value)
    }
}

/// A time-stamped message exchanged between logical processes.
///
/// This is the wire protocol of the parallel kernels:
///
/// * [`Message::Event`] — an ordinary simulation event (§II),
/// * [`Message::Anti`] — a Time Warp anti-message cancelling a previously
///   sent event (§IV: "they are sent anti-messages to cancel the original
///   message"),
/// * [`Message::Null`] — a Chandy–Misra–Bryant null message, "a way for an
///   LP to notify its downstream neighbors that their inputs are stable up
///   to the time of the time stamp" (§IV).
///
/// # Examples
///
/// ```
/// use parsim_event::{Event, Message, VirtualTime};
/// use parsim_logic::Bit;
/// use parsim_netlist::GateId;
///
/// let m: Message<Bit> = Message::Null { time: VirtualTime::new(7) };
/// assert_eq!(m.time(), VirtualTime::new(7));
/// assert!(m.is_null());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Message<V> {
    /// An ordinary simulation event.
    Event(Event<V>),
    /// An anti-message cancelling the identical previously-sent event.
    Anti(Event<V>),
    /// A promise that the sender will emit no event earlier than `time`.
    Null {
        /// The lower bound on future event times from this sender.
        time: VirtualTime,
    },
}

impl<V> Message<V> {
    /// The message timestamp.
    pub fn time(&self) -> VirtualTime {
        match self {
            Message::Event(e) | Message::Anti(e) => e.time,
            Message::Null { time } => *time,
        }
    }

    /// Returns `true` for null messages.
    pub fn is_null(&self) -> bool {
        matches!(self, Message::Null { .. })
    }

    /// Returns `true` for anti-messages.
    pub fn is_anti(&self) -> bool {
        matches!(self, Message::Anti(_))
    }
}

impl<V: Display> Display for Message<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Message::Event(e) => write!(f, "{e}"),
            Message::Anti(e) => write!(f, "anti({e})"),
            Message::Null { time } => write!(f, "null@{time}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim_logic::Logic4;

    #[test]
    fn message_accessors() {
        let e = Event::new(VirtualTime::new(3), GateId::new(1), Logic4::X);
        assert_eq!(Message::Event(e).time(), VirtualTime::new(3));
        assert!(Message::Anti(e).is_anti());
        assert!(!Message::Event(e).is_null());
        assert_eq!(Message::Anti(e).to_string(), "anti(@3 g1=X)");
        assert_eq!(Message::<Logic4>::Null { time: VirtualTime::new(9) }.to_string(), "null@9");
    }
}
