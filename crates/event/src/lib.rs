//! Simulation events, virtual time and event-queue implementations.
//!
//! Discrete-event logic simulation revolves around *time-stamped messages*:
//! "a change in the output of an LP ... is communicated to the fanout LPs by
//! delivering a time stamped message" (Chamberlain, DAC '95 §II). This crate
//! defines:
//!
//! * [`VirtualTime`] — the simulated-time axis, a totally ordered tick
//!   counter with an *infinity* sentinel used by null-message and GVT
//!   computations,
//! * [`Event`] — a net-value change at a point in simulated time,
//! * [`Message`] — the inter-LP protocol envelope (event, anti-event for
//!   Time Warp cancellation, or null message for conservative deadlock
//!   avoidance),
//! * [`EventQueue`] — the pending-event-set abstraction with two
//!   implementations: a [`BinaryHeapQueue`], a Brown [`CalendarQueue`] and
//!   a [`PairingHeapQueue`] (the paper's §II notes "event queue management"
//!   as a major component of simulation cost; the queue benchmark compares
//!   all three).
//!
//! All queues order events deterministically by `(time, net, insertion
//! sequence)`, which makes every simulation kernel in the workspace
//! bit-reproducible.
//!
//! # Examples
//!
//! ```
//! use parsim_event::{BinaryHeapQueue, Event, EventQueue, VirtualTime};
//! use parsim_logic::Bit;
//! use parsim_netlist::GateId;
//!
//! let mut q = BinaryHeapQueue::new();
//! q.push(Event::new(VirtualTime::new(5), GateId::new(0), Bit::One));
//! q.push(Event::new(VirtualTime::new(2), GateId::new(1), Bit::Zero));
//! assert_eq!(q.peek_time(), Some(VirtualTime::new(2)));
//! assert_eq!(q.pop().unwrap().time, VirtualTime::new(2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod calendar;
mod event;
mod pairing;
mod queue;
mod time;

pub use calendar::CalendarQueue;
pub use event::{Event, Message};
pub use pairing::PairingHeapQueue;
pub use queue::{BinaryHeapQueue, EventQueue};
pub use time::VirtualTime;
