//! A pairing-heap pending event set.

use std::fmt::Debug;

use crate::queue::Keyed;
use crate::{Event, EventQueue, VirtualTime};

/// A node in the arena: element plus intrusive child/sibling links.
#[derive(Debug, Clone)]
struct Node<V> {
    item: Keyed<V>,
    /// First child (arena index), `usize::MAX` = none.
    child: usize,
    /// Next sibling (arena index), `usize::MAX` = none.
    sibling: usize,
}

const NONE: usize = usize::MAX;

/// A pairing heap (Fredman et al.): the priority queue with the best
/// practical constants for the *hold* access pattern of discrete-event
/// simulation, and a fixture of the PDES literature's event-queue studies
/// alongside the binary heap and the calendar queue.
///
/// `O(1)` insert, amortized `O(log n)` delete-min via the two-pass pairing
/// rule. Nodes live in a free-listed arena, so steady-state operation does
/// no allocation. Ordering is the workspace-wide deterministic
/// `(time, net, insertion sequence)` key, so it drains identically to the
/// other queues (differential-tested).
///
/// # Examples
///
/// ```
/// use parsim_event::{Event, EventQueue, PairingHeapQueue, VirtualTime};
/// use parsim_logic::Bit;
/// use parsim_netlist::GateId;
///
/// let mut q = PairingHeapQueue::new();
/// for t in [7u64, 3, 11, 3] {
///     q.push(Event::new(VirtualTime::new(t), GateId::new(0), Bit::One));
/// }
/// let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.time.ticks()).collect();
/// assert_eq!(order, vec![3, 3, 7, 11]);
/// ```
#[derive(Debug)]
pub struct PairingHeapQueue<V> {
    arena: Vec<Node<V>>,
    free: Vec<usize>,
    root: usize,
    len: usize,
    next_seq: u64,
    /// Scratch for the second pairing pass.
    scratch: Vec<usize>,
}

impl<V: Copy + Debug> PairingHeapQueue<V> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        PairingHeapQueue {
            arena: Vec::new(),
            free: Vec::new(),
            root: NONE,
            len: 0,
            next_seq: 0,
            scratch: Vec::new(),
        }
    }

    fn alloc(&mut self, item: Keyed<V>) -> usize {
        let node = Node { item, child: NONE, sibling: NONE };
        match self.free.pop() {
            Some(i) => {
                self.arena[i] = node;
                i
            }
            None => {
                self.arena.push(node);
                self.arena.len() - 1
            }
        }
    }

    /// Melds two heaps rooted at `a` and `b`; the smaller key becomes the
    /// parent.
    fn meld(&mut self, a: usize, b: usize) -> usize {
        if a == NONE {
            return b;
        }
        if b == NONE {
            return a;
        }
        let (parent, child) =
            if self.arena[a].item.key() <= self.arena[b].item.key() { (a, b) } else { (b, a) };
        self.arena[child].sibling = self.arena[parent].child;
        self.arena[parent].child = child;
        parent
    }

    /// Two-pass pairing of a child list.
    fn merge_pairs(&mut self, first: usize) -> usize {
        // Pass 1: left to right, meld adjacent pairs.
        self.scratch.clear();
        let mut cur = first;
        while cur != NONE {
            let a = cur;
            let b = self.arena[a].sibling;
            if b == NONE {
                self.arena[a].sibling = NONE;
                self.scratch.push(a);
                break;
            }
            let next = self.arena[b].sibling;
            self.arena[a].sibling = NONE;
            self.arena[b].sibling = NONE;
            let melded = self.meld(a, b);
            self.scratch.push(melded);
            cur = next;
        }
        // Pass 2: right to left.
        let mut root = NONE;
        let mut pairs = std::mem::take(&mut self.scratch);
        while let Some(h) = pairs.pop() {
            root = self.meld(root, h);
        }
        self.scratch = pairs;
        root
    }
}

impl<V: Copy + Debug> Default for PairingHeapQueue<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Copy + Debug> EventQueue<V> for PairingHeapQueue<V> {
    fn push(&mut self, event: Event<V>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let node = self.alloc(Keyed { event, seq });
        let root = self.root;
        self.root = self.meld(root, node);
        self.len += 1;
    }

    fn pop(&mut self) -> Option<Event<V>> {
        if self.root == NONE {
            return None;
        }
        let old_root = self.root;
        let event = self.arena[old_root].item.event;
        let first_child = self.arena[old_root].child;
        self.root = self.merge_pairs(first_child);
        self.free.push(old_root);
        self.len -= 1;
        Some(event)
    }

    fn peek_time(&self) -> Option<VirtualTime> {
        if self.root == NONE {
            None
        } else {
            Some(self.arena[self.root].item.event.time)
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn clear(&mut self) {
        self.arena.clear();
        self.free.clear();
        self.root = NONE;
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BinaryHeapQueue;
    use parsim_logic::Bit;
    use parsim_netlist::GateId;

    fn ev(t: u64, n: usize) -> Event<Bit> {
        Event::new(VirtualTime::new(t), GateId::new(n), Bit::One)
    }

    #[test]
    fn pops_in_order() {
        let mut q = PairingHeapQueue::new();
        for t in [9u64, 2, 7, 2, 100, 0] {
            q.push(ev(t, 0));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.time.ticks()).collect();
        assert_eq!(order, vec![0, 2, 2, 7, 9, 100]);
    }

    #[test]
    fn matches_binary_heap_on_pseudorandom_workload() {
        let mut pairing = PairingHeapQueue::new();
        let mut heap = BinaryHeapQueue::new();
        let mut x: u64 = 0xDEADBEEF;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for round in 0..3000u64 {
            let e = ev(next() % 10_000, (next() % 64) as usize);
            pairing.push(e);
            heap.push(e);
            if round % 3 == 0 {
                assert_eq!(pairing.pop(), heap.pop(), "divergence at round {round}");
                assert_eq!(pairing.peek_time(), heap.peek_time());
            }
        }
        while let Some(h) = heap.pop() {
            assert_eq!(pairing.pop(), Some(h));
        }
        assert_eq!(pairing.pop(), None);
        assert!(pairing.is_empty());
    }

    #[test]
    fn arena_is_reused() {
        let mut q = PairingHeapQueue::new();
        for t in 0..100 {
            q.push(ev(t, 0));
        }
        for _ in 0..100 {
            q.pop();
        }
        let arena_size = q.arena.len();
        for t in 0..100 {
            q.push(ev(t, 0));
        }
        assert_eq!(q.arena.len(), arena_size, "free list must recycle nodes");
    }

    #[test]
    fn clear_resets() {
        let mut q = PairingHeapQueue::new();
        q.push(ev(5, 0));
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(ev(1, 0));
        assert_eq!(q.pop().unwrap().time.ticks(), 1);
    }
}
