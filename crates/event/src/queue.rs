//! The pending-event-set abstraction and the binary-heap implementation.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt::Debug;

use crate::{Event, VirtualTime};

/// A pending event set: a priority queue ordered by simulated time.
///
/// Ties are broken deterministically by `(net, insertion sequence)`, so any
/// two implementations drain an identical push sequence in an identical
/// order — which is what makes whole-simulation differential tests between
/// queue implementations meaningful.
///
/// # Examples
///
/// ```
/// use parsim_event::{CalendarQueue, BinaryHeapQueue, Event, EventQueue, VirtualTime};
/// use parsim_logic::Bit;
/// use parsim_netlist::GateId;
///
/// fn drain<Q: EventQueue<Bit>>(mut q: Q) -> Vec<u64> {
///     for (t, n) in [(9, 0), (3, 1), (9, 0), (1, 2)] {
///         q.push(Event::new(VirtualTime::new(t), GateId::new(n), Bit::One));
///     }
///     std::iter::from_fn(|| q.pop()).map(|e| e.time.ticks()).collect()
/// }
/// assert_eq!(drain(BinaryHeapQueue::new()), vec![1, 3, 9, 9]);
/// assert_eq!(drain(CalendarQueue::new()), vec![1, 3, 9, 9]);
/// ```
pub trait EventQueue<V>: Debug {
    /// Inserts an event.
    fn push(&mut self, event: Event<V>);

    /// Removes and returns the earliest event, if any.
    fn pop(&mut self) -> Option<Event<V>>;

    /// The timestamp of the earliest event, if any.
    fn peek_time(&self) -> Option<VirtualTime>;

    /// Number of pending events.
    fn len(&self) -> usize;

    /// Returns `true` if no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes all pending events.
    fn clear(&mut self);
}

/// An entry with the deterministic ordering key.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Keyed<V> {
    pub(crate) event: Event<V>,
    pub(crate) seq: u64,
}

impl<V> Keyed<V> {
    pub(crate) fn key(&self) -> (VirtualTime, usize, u64) {
        (self.event.time, self.event.net.index(), self.seq)
    }
}

impl<V> PartialEq for Keyed<V> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl<V> Eq for Keyed<V> {}

impl<V> PartialOrd for Keyed<V> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<V> Ord for Keyed<V> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we need the min element on top.
        other.key().cmp(&self.key())
    }
}

/// The classic binary-heap pending event set.
///
/// `O(log n)` push and pop with excellent constants; the baseline against
/// which [`CalendarQueue`](crate::CalendarQueue) is benchmarked.
#[derive(Debug)]
pub struct BinaryHeapQueue<V> {
    heap: BinaryHeap<Keyed<V>>,
    next_seq: u64,
}

impl<V> BinaryHeapQueue<V> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        BinaryHeapQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Creates an empty queue with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BinaryHeapQueue { heap: BinaryHeap::with_capacity(capacity), next_seq: 0 }
    }
}

impl<V> Default for BinaryHeapQueue<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Copy + Debug> EventQueue<V> for BinaryHeapQueue<V> {
    fn push(&mut self, event: Event<V>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Keyed { event, seq });
    }

    fn pop(&mut self) -> Option<Event<V>> {
        self.heap.pop().map(|k| k.event)
    }

    fn peek_time(&self) -> Option<VirtualTime> {
        self.heap.peek().map(|k| k.event.time)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim_logic::Bit;
    use parsim_netlist::GateId;

    fn ev(t: u64, n: usize) -> Event<Bit> {
        Event::new(VirtualTime::new(t), GateId::new(n), Bit::One)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = BinaryHeapQueue::new();
        for t in [5, 1, 9, 3, 7] {
            q.push(ev(t, 0));
        }
        let times: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.time.ticks()).collect();
        assert_eq!(times, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn ties_break_by_net_then_insertion() {
        let mut q = BinaryHeapQueue::new();
        q.push(ev(4, 7));
        q.push(ev(4, 2));
        q.push(ev(4, 7));
        let order: Vec<usize> = std::iter::from_fn(|| q.pop()).map(|e| e.net.index()).collect();
        assert_eq!(order, vec![2, 7, 7]);
    }

    #[test]
    fn peek_len_clear() {
        let mut q = BinaryHeapQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(ev(2, 0));
        q.push(ev(1, 0));
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(VirtualTime::new(1)));
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }
}
