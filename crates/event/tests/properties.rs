//! Differential property tests: the two pending-event-set implementations
//! must behave identically on any workload.

use parsim_event::{BinaryHeapQueue, CalendarQueue, Event, EventQueue, VirtualTime};
use parsim_logic::{Logic4, LogicValue};
use parsim_netlist::GateId;
use proptest::prelude::*;

/// A workload step: push an event, or pop one.
#[derive(Debug, Clone)]
enum Op {
    Push { time: u64, net: usize, value: Logic4 },
    Pop,
}

fn any_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u64..100_000, 0usize..64, prop::sample::select(Logic4::all().to_vec()))
            .prop_map(|(time, net, value)| Op::Push { time, net, value }),
        2 => Just(Op::Pop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Calendar queue and binary heap produce byte-identical pop sequences
    /// for any interleaving of pushes and pops.
    #[test]
    fn calendar_matches_heap(ops in prop::collection::vec(any_op(), 1..400)) {
        let mut cal: CalendarQueue<Logic4> = CalendarQueue::new();
        let mut heap: BinaryHeapQueue<Logic4> = BinaryHeapQueue::new();
        for op in ops {
            match op {
                Op::Push { time, net, value } => {
                    let e = Event::new(VirtualTime::new(time), GateId::new(net), value);
                    cal.push(e);
                    heap.push(e);
                }
                Op::Pop => {
                    prop_assert_eq!(cal.pop(), heap.pop());
                }
            }
            prop_assert_eq!(cal.len(), heap.len());
            prop_assert_eq!(cal.peek_time(), heap.peek_time());
        }
        // Drain the remainder.
        loop {
            let (c, h) = (cal.pop(), heap.pop());
            prop_assert_eq!(c, h);
            if h.is_none() {
                break;
            }
        }
    }

    /// Dense single-day drain equivalence: all events hash to one calendar
    /// day (few distinct timestamps, large population), the workload that
    /// degraded the old front-of-Vec dequeue to O(n²). The drain must still
    /// match the binary heap exactly, including FIFO order among ties.
    #[test]
    fn dense_day_drain_matches_heap(
        base in 0u64..10_000,
        nets in prop::collection::vec(0usize..64, 64..512),
    ) {
        let mut cal: CalendarQueue<Logic4> = CalendarQueue::new();
        let mut heap: BinaryHeapQueue<Logic4> = BinaryHeapQueue::new();
        for (i, &net) in nets.iter().enumerate() {
            // At most two adjacent timestamps, so resizes estimate a tiny
            // span and the whole population stays in one or two days.
            let t = base + (i % 2) as u64;
            let e = Event::new(VirtualTime::new(t), GateId::new(net), Logic4::One);
            cal.push(e);
            heap.push(e);
        }
        loop {
            let (c, h) = (cal.pop(), heap.pop());
            prop_assert_eq!(c, h);
            if h.is_none() {
                break;
            }
        }
    }

    /// Pop sequences are non-decreasing in time as long as no push goes
    /// backwards past the last pop (the monotone usage pattern of the
    /// sequential kernel).
    #[test]
    fn monotone_workload_pops_sorted(times in prop::collection::vec(0u64..1_000_000, 1..500)) {
        let mut q: CalendarQueue<Logic4> = CalendarQueue::new();
        for &t in &times {
            q.push(Event::new(VirtualTime::new(t), GateId::new(0), Logic4::One));
        }
        let mut last = VirtualTime::ZERO;
        while let Some(e) = q.pop() {
            prop_assert!(e.time >= last);
            last = e.time;
        }
    }
}
