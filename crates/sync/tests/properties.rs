//! Property-based tests for the synchronous kernels.

use parsim_core::{Observe, SequentialSimulator, SimOutcome, Simulator, Stimulus};
use parsim_event::VirtualTime;
use parsim_logic::Logic4;
use parsim_machine::MachineConfig;
use parsim_netlist::generate::{random_dag, RandomDagConfig};
use parsim_netlist::{Circuit, DelayModel};
use parsim_partition::{ConePartitioner, GateWeights, Partition, Partitioner};
use parsim_sync::{SyncSimulator, ThreadedSyncSimulator};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Scenario {
    circuit: Circuit,
    stimulus: Stimulus,
    until: VirtualTime,
    processors: usize,
}

fn any_scenario() -> impl Strategy<Value = Scenario> {
    (20usize..150, 1u64..10, any::<u64>(), 2usize..6, 40u64..200, 1u64..9).prop_map(
        |(gates, max_delay, seed, processors, until, clock_half)| {
            let circuit = random_dag(&RandomDagConfig {
                gates,
                inputs: 10,
                seq_fraction: 0.15,
                delays: if max_delay == 1 {
                    DelayModel::Unit
                } else {
                    DelayModel::Uniform { min: 1, max: max_delay, seed }
                },
                seed,
                ..Default::default()
            });
            let stimulus = Stimulus::random(seed, 9).with_clock(clock_half);
            Scenario { circuit, stimulus, until: VirtualTime::new(until), processors }
        },
    )
}

fn oracle(s: &Scenario) -> SimOutcome<Logic4> {
    SequentialSimulator::<Logic4>::new().with_observe(Observe::AllNets).run(
        &s.circuit,
        &s.stimulus,
        s.until,
    )
}

fn partition(s: &Scenario) -> Partition {
    ConePartitioner.partition(&s.circuit, s.processors, &GateWeights::uniform(s.circuit.len()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Modeled and threaded synchronous kernels both equal the oracle, and
    /// their barrier counts agree (both execute one superstep per distinct
    /// event time, plus the initial step).
    #[test]
    fn sync_kernels_match_oracle_and_each_other(s in any_scenario()) {
        let reference = oracle(&s);
        let part = partition(&s);
        let modeled = SyncSimulator::<Logic4>::new(
            part.clone(),
            MachineConfig::shared_memory(s.processors),
        )
        .with_observe(Observe::AllNets)
        .run(&s.circuit, &s.stimulus, s.until);
        prop_assert_eq!(modeled.divergence_from(&reference), None);
        let threaded = ThreadedSyncSimulator::<Logic4>::new(part)
            .with_observe(Observe::AllNets)
            .run(&s.circuit, &s.stimulus, s.until);
        prop_assert_eq!(threaded.divergence_from(&reference), None);
        prop_assert_eq!(modeled.stats.barriers, threaded.stats.barriers);
    }

    /// The modeled speedup never exceeds the processor count, and the
    /// modeled makespan never beats the single-processor work.
    #[test]
    fn modeled_speedup_is_physical(s in any_scenario()) {
        let out = SyncSimulator::<Logic4>::new(
            partition(&s),
            MachineConfig::shared_memory(s.processors),
        )
        .with_observe(Observe::Nothing)
        .run(&s.circuit, &s.stimulus, s.until);
        if let Some(speedup) = out.stats.modeled_speedup() {
            prop_assert!(speedup <= s.processors as f64 + 1e-9,
                "speedup {speedup} beats P={}", s.processors);
            prop_assert!(speedup > 0.0);
        }
    }
}
