//! The threaded synchronous kernel.

use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::sync::{Barrier, Mutex};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parsim_core::{
    evaluate_gate, GateRuntime, Observe, SimOutcome, SimStats, Simulator, Stimulus, Waveform,
};
use parsim_event::{BinaryHeapQueue, Event, EventQueue, VirtualTime};
use parsim_logic::{GateKind, LogicValue};
use parsim_netlist::{Circuit, GateId};
use parsim_partition::Partition;
use parsim_trace::{Probe, TraceKind, NO_LP};

/// The synchronous kernel on real threads.
///
/// One worker thread per partition block; each superstep the workers agree
/// on the next event time through a shared head-time table and a
/// `std::sync::Barrier`, process their events on private state, and
/// exchange boundary events over crossbeam channels. Logical results are
/// bit-identical to [`SyncSimulator`](crate::SyncSimulator) and the
/// sequential reference.
///
/// On a single-core host this kernel demonstrates correctness, not speedup;
/// wall-clock numbers are only meaningful on real multiprocessors (the
/// modeled kernel exists precisely because this host has one core).
#[derive(Debug, Clone)]
pub struct ThreadedSyncSimulator<V> {
    partition: Partition,
    observe: Observe,
    probe: Probe,
    _values: PhantomData<V>,
}

impl<V: LogicValue> ThreadedSyncSimulator<V> {
    /// Creates the kernel; one thread per partition block.
    pub fn new(partition: Partition) -> Self {
        ThreadedSyncSimulator {
            partition,
            observe: Observe::Outputs,
            probe: Probe::disabled(),
            _values: PhantomData,
        }
    }

    /// Selects which nets to record waveforms for.
    pub fn with_observe(mut self, observe: Observe) -> Self {
        self.observe = observe;
        self
    }

    /// Attaches a trace probe. Each worker thread records on its own handle
    /// with host wall-clock nanoseconds as the timeline: measured
    /// barrier-wait spans, gate evaluations, queue operations and
    /// cross-block sends.
    pub fn with_probe(mut self, probe: Probe) -> Self {
        self.probe = probe;
        self
    }
}

struct WorkerResult<V> {
    owned_values: Vec<(GateId, V)>,
    waveforms: BTreeMap<GateId, Waveform<V>>,
    stats: SimStats,
}

impl<V: LogicValue> Simulator<V> for ThreadedSyncSimulator<V> {
    fn name(&self) -> String {
        format!("threaded-synchronous(P={})", self.partition.blocks())
    }

    fn run(&self, circuit: &Circuit, stimulus: &Stimulus, until: VirtualTime) -> SimOutcome<V> {
        assert_eq!(self.partition.len(), circuit.len(), "partition does not match circuit");
        assert!(
            circuit.min_gate_delay().ticks() >= 1,
            "simulation kernels require nonzero gate delays"
        );
        let p_count = self.partition.blocks();
        let n = circuit.len();

        // Pre-compute destination blocks per net.
        let dests: Vec<Vec<usize>> = circuit
            .ids()
            .map(|id| {
                let mut d: Vec<usize> =
                    circuit.fanout(id).iter().map(|e| self.partition.block_of(e.gate)).collect();
                d.push(self.partition.block_of(id));
                d.sort_unstable();
                d.dedup();
                d
            })
            .collect();

        // Initial events, distributed per destination block.
        let mut initial: Vec<Vec<Event<V>>> = vec![Vec::new(); p_count];
        let mut init_events: Vec<Event<V>> = stimulus.events::<V>(circuit, until);
        for (id, g) in circuit.iter() {
            if g.kind() == GateKind::Const1 {
                init_events.push(Event::new(VirtualTime::ZERO, id, V::ONE));
            }
        }
        for e in &init_events {
            for &b in &dests[e.net.index()] {
                initial[b].push(*e);
            }
        }

        let barrier = Barrier::new(p_count);
        let heads: Mutex<Vec<Option<VirtualTime>>> = Mutex::new(vec![None; p_count]);
        let mut senders: Vec<Sender<Event<V>>> = Vec::with_capacity(p_count);
        let mut receivers: Vec<Option<Receiver<Event<V>>>> = Vec::with_capacity(p_count);
        for _ in 0..p_count {
            let (s, r) = unbounded();
            senders.push(s);
            receivers.push(Some(r));
        }

        let owned: Vec<Vec<GateId>> = self.partition.members();

        let results: Vec<WorkerResult<V>> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p_count);
            for p in 0..p_count {
                let my_initial = std::mem::take(&mut initial[p]);
                let my_rx = receivers[p].take().expect("receiver taken once");
                let senders = senders.clone();
                let barrier = &barrier;
                let heads = &heads;
                let dests = &dests;
                let owned = &owned[p];
                let partition = &self.partition;
                let observe = self.observe;
                let ph = self.probe.handle();
                handles.push(scope.spawn(move || {
                    run_worker(
                        p, circuit, partition, observe, my_initial, my_rx, senders, barrier, heads,
                        dests, owned, until, ph,
                    )
                }));
            }
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        });

        // Merge worker results.
        let mut final_values = vec![V::ZERO; n];
        let mut waveforms = BTreeMap::new();
        let mut stats = SimStats::default();
        for r in results {
            for (id, v) in r.owned_values {
                final_values[id.index()] = v;
            }
            waveforms.extend(r.waveforms);
            stats.merge(&r.stats);
        }
        SimOutcome { final_values, waveforms, end_time: until, stats }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_worker<V: LogicValue>(
    p: usize,
    circuit: &Circuit,
    partition: &Partition,
    observe: Observe,
    initial: Vec<Event<V>>,
    rx: Receiver<Event<V>>,
    senders: Vec<Sender<Event<V>>>,
    barrier: &Barrier,
    heads: &Mutex<Vec<Option<VirtualTime>>>,
    dests: &[Vec<usize>],
    owned: &[GateId],
    until: VirtualTime,
    mut ph: parsim_trace::ProbeHandle,
) -> WorkerResult<V> {
    // Measured barrier wait: real elapsed nanoseconds, not modeled cost.
    let timed_wait = |ph: &mut parsim_trace::ProbeHandle, vt: u64| {
        if ph.enabled() {
            let start = ph.now_ns();
            barrier.wait();
            let end = ph.now_ns();
            ph.emit(start, vt, p as u32, NO_LP, TraceKind::BarrierWait, end - start);
        } else {
            barrier.wait();
        }
    };
    let n = circuit.len();
    let mut values = vec![V::ZERO; n];
    let mut runtime: BTreeMap<GateId, GateRuntime<V>> =
        owned.iter().map(|&id| (id, GateRuntime::default())).collect();
    let mut waveforms: BTreeMap<GateId, Waveform<V>> = owned
        .iter()
        .copied()
        .filter(|&id| observe.wants(circuit, id))
        .map(|id| (id, Waveform::new(V::ZERO)))
        .collect();
    let mut queue = BinaryHeapQueue::new();
    for e in initial {
        queue.push(e);
    }
    let mut stats = SimStats::default();
    let mut stamp = vec![u64::MAX; n];
    let mut stamp_counter = 0u64;
    let mut first_step = true;

    loop {
        // Publish the local head time; the minimum is the global step time.
        {
            let mut h = heads.lock().expect("heads lock");
            h[p] = queue.peek_time();
        }
        timed_wait(&mut ph, 0);
        let now = {
            let h = heads.lock().expect("heads lock");
            h.iter().flatten().min().copied()
        };
        // All workers must pass this barrier before anyone rewrites heads.
        timed_wait(&mut ph, 0);
        // The first round always runs at t = 0 (initial evaluation), even
        // when the earliest queued event is later; every worker takes this
        // branch in the same round, keeping the barriers aligned.
        let now = if first_step {
            VirtualTime::ZERO
        } else {
            match now {
                Some(t) if t <= until => t,
                _ => break,
            }
        };

        stamp_counter += 1;
        let mut dirty: Vec<GateId> = Vec::new();

        // Phase 1: apply local events at `now`.
        while queue.peek_time() == Some(now) {
            let e = queue.pop().expect("peeked");
            stats.events_processed += 1;
            if ph.enabled() {
                let t = ph.now_ns();
                ph.emit(
                    t,
                    now.ticks(),
                    p as u32,
                    e.net.index() as u32,
                    TraceKind::Dequeue,
                    queue.len() as u64,
                );
            }
            if values[e.net.index()] == e.value {
                continue;
            }
            values[e.net.index()] = e.value;
            if let Some(w) = waveforms.get_mut(&e.net) {
                w.record(now, e.value);
            }
            for entry in circuit.fanout(e.net) {
                if partition.block_of(entry.gate) == p && stamp[entry.gate.index()] != stamp_counter
                {
                    stamp[entry.gate.index()] = stamp_counter;
                    dirty.push(entry.gate);
                }
            }
        }
        if first_step {
            for &id in owned {
                if !circuit.kind(id).is_source() && stamp[id.index()] != stamp_counter {
                    stamp[id.index()] = stamp_counter;
                    dirty.push(id);
                }
            }
            first_step = false;
        }

        // Phase 2: evaluate and distribute.
        dirty.sort_unstable();
        for &id in &dirty {
            stats.gate_evaluations += 1;
            if ph.enabled() {
                let t = ph.now_ns();
                ph.emit(t, now.ticks(), p as u32, id.index() as u32, TraceKind::GateEval, 1);
            }
            let rt = runtime.get_mut(&id).expect("dirty gate is owned");
            let out = evaluate_gate(circuit, id, &mut |f| values[f.index()], rt);
            if let Some(v) = out {
                let e = Event::new(now + circuit.delay(id), id, v);
                stats.events_scheduled += 1;
                for &b in &dests[id.index()] {
                    if b == p {
                        queue.push(e);
                    } else {
                        stats.messages_sent += 1;
                        if ph.enabled() {
                            let t = ph.now_ns();
                            ph.emit(
                                t,
                                now.ticks(),
                                p as u32,
                                id.index() as u32,
                                TraceKind::MessageSend,
                                b as u64,
                            );
                        }
                        senders[b].send(e).expect("peer alive until all workers exit");
                    }
                }
            }
        }

        // Phase 3: everyone has sent; drain the inbox.
        timed_wait(&mut ph, now.ticks());
        stats.barriers += 1;
        for e in rx.try_iter() {
            queue.push(e);
        }
    }

    let owned_values = owned.iter().map(|&id| (id, values[id.index()])).collect();
    WorkerResult { owned_values, waveforms, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim_core::SequentialSimulator;
    use parsim_logic::{Bit, Logic4};
    use parsim_netlist::{bench, generate, DelayModel};
    use parsim_partition::{FiducciaMattheyses, GateWeights, Partitioner};

    fn check_equivalent<V: LogicValue>(c: &Circuit, stim: &Stimulus, until: u64, p: usize) {
        let part = FiducciaMattheyses::default().partition(c, p, &GateWeights::uniform(c.len()));
        let threaded = ThreadedSyncSimulator::<V>::new(part).with_observe(Observe::AllNets).run(
            c,
            stim,
            VirtualTime::new(until),
        );
        let seq = SequentialSimulator::<V>::new().with_observe(Observe::AllNets).run(
            c,
            stim,
            VirtualTime::new(until),
        );
        if let Some(d) = threaded.divergence_from(&seq) {
            panic!("threaded synchronous kernel diverged on {}: {d}", c.name());
        }
    }

    #[test]
    fn matches_sequential_on_combinational() {
        check_equivalent::<Bit>(&bench::c17(), &Stimulus::random(1, 8), 200, 3);
        let c = generate::ripple_adder(12, DelayModel::PerKind);
        check_equivalent::<Logic4>(&c, &Stimulus::counting(30), 600, 4);
    }

    #[test]
    fn matches_sequential_on_sequential_circuits() {
        let c = generate::lfsr(8, DelayModel::Unit);
        check_equivalent::<Bit>(&c, &Stimulus::quiet(1000).with_clock(5), 400, 4);
    }

    #[test]
    fn matches_sequential_on_random_dags() {
        for seed in 0..3 {
            let c = generate::random_dag(&generate::RandomDagConfig {
                gates: 200,
                seq_fraction: 0.1,
                delays: DelayModel::Uniform { min: 1, max: 9, seed },
                seed,
                ..Default::default()
            });
            check_equivalent::<Bit>(&c, &Stimulus::random(seed, 12).with_clock(7), 300, 4);
        }
    }

    #[test]
    fn single_worker_degenerates_to_sequential() {
        let c = bench::c17();
        check_equivalent::<Bit>(&c, &Stimulus::random(2, 5), 150, 1);
    }
}
