//! The threaded synchronous kernel, as a protocol on the shared fabric.

use std::marker::PhantomData;

use parsim_core::{
    LpTopology, Observe, RunBudget, SimError, SimOutcome, SimStats, Simulator, Stimulus,
};
use parsim_event::{BinaryHeapQueue, Event, EventQueue, VirtualTime};
use parsim_logic::LogicValue;
use parsim_netlist::{Delay, GateId};
use parsim_partition::Partition;
use parsim_runtime::{
    CompiledMode, DecideCx, Decision, Fabric, FaultPlan, LpCore, RoundCx, RunOptions, SyncProtocol,
    WorkerOutput,
};
use parsim_trace::{Probe, TraceKind};

/// The synchronous kernel on real threads.
///
/// One worker thread per partition block, one LP per worker, driven by the
/// shared [`Fabric`]. Each round the workers process every local event at
/// the globally agreed step time, exchange boundary events through the
/// lock-free SPSC-ring mailbox mesh (batched by the `Outbox`, one ring
/// per worker pair), and report the earliest pending timestamp (local
/// queue head, or the earliest event sent this round — so in-flight
/// messages are covered); the coordinator's minimum is the next step time.
/// Logical results are bit-identical to
/// [`SyncSimulator`](crate::SyncSimulator) and the sequential reference.
///
/// On a single-core host this kernel demonstrates correctness, not speedup;
/// wall-clock numbers are only meaningful on real multiprocessors (the
/// modeled kernel exists precisely because this host has one core).
#[derive(Debug, Clone)]
pub struct ThreadedSyncSimulator<V> {
    partition: Partition,
    observe: Observe,
    probe: Probe,
    options: RunOptions,
    compiled: CompiledMode,
    _values: PhantomData<V>,
}

impl<V: LogicValue> ThreadedSyncSimulator<V> {
    /// Creates the kernel; one thread per partition block.
    pub fn new(partition: Partition) -> Self {
        ThreadedSyncSimulator {
            partition,
            observe: Observe::Outputs,
            probe: Probe::disabled(),
            options: RunOptions::default(),
            compiled: CompiledMode::Off,
            _values: PhantomData,
        }
    }

    /// Switches gate evaluation to compiled bytecode: each worker's gate
    /// block is lowered once, up front, and the per-round dirty batch runs
    /// through the dispatch-free executors. Results are bit-identical to
    /// the interpreted default.
    pub fn with_compiled(mut self) -> Self {
        self.compiled = CompiledMode::InMemory;
        self
    }

    /// Compiled evaluation through the on-disk artifact store rooted at
    /// `dir`: a warm cache skips compilation entirely.
    pub fn with_compiled_cache(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.compiled = CompiledMode::Cached(dir.into());
        self
    }

    /// Selects which nets to record waveforms for.
    pub fn with_observe(mut self, observe: Observe) -> Self {
        self.observe = observe;
        self
    }

    /// Attaches a trace probe. Each worker thread records on its own handle
    /// with host wall-clock nanoseconds as the timeline: measured
    /// barrier-wait spans, gate evaluations, queue operations and
    /// cross-block sends.
    pub fn with_probe(mut self, probe: Probe) -> Self {
        self.probe = probe;
        self
    }

    /// Bounds the run (rounds, events, wall clock); an exhausted budget
    /// truncates gracefully instead of erroring.
    pub fn with_budget(mut self, budget: RunBudget) -> Self {
        self.options.budget = budget;
        self
    }

    /// Attaches a fault-injection plan for [`try_run`](Self::try_run).
    /// Batch faults are addressed per channel: a plan names the
    /// `(sender, receiver)` worker pair and the batch sequence number
    /// *on that channel* (sequences are per-channel counters, matching
    /// the mesh's one-SPSC-ring-per-pair transport).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.options.faults = Some(plan);
        self
    }

    /// Bounds every barrier wait: a worker that stops participating
    /// without panicking (a hang, not a crash) fails the run with
    /// [`SimError::BarrierTimeout`] naming the stalled workers, instead of
    /// blocking its peers forever.
    pub fn with_barrier_timeout(mut self, timeout: std::time::Duration) -> Self {
        self.options.barrier_timeout = Some(timeout);
        self
    }

    /// Runs the kernel, returning a structured [`SimError`] instead of
    /// panicking when a worker fails or the protocol aborts.
    pub fn try_run(
        &self,
        circuit: &parsim_netlist::Circuit,
        stimulus: &Stimulus,
        until: VirtualTime,
    ) -> Result<SimOutcome<V>, SimError> {
        let fabric = self.compiled.apply(Fabric::new(circuit, &self.partition, 1, self.observe));
        fabric.run(stimulus, until, &self.probe, &BarrierProtocol, &self.options)
    }
}

impl<V: LogicValue> Simulator<V> for ThreadedSyncSimulator<V> {
    fn name(&self) -> String {
        format!("threaded-synchronous(P={})", self.partition.blocks())
    }

    fn run(
        &self,
        circuit: &parsim_netlist::Circuit,
        stimulus: &Stimulus,
        until: VirtualTime,
    ) -> SimOutcome<V> {
        self.try_run(circuit, stimulus, until).unwrap_or_else(|e| panic!("{e}"))
    }
}

/// Routes one freshly scheduled output event: local queue for the
/// driver's own block, mailbox sends for remote destinations. Shared
/// verbatim by the interpreted and compiled evaluation paths so they
/// cannot drift apart.
#[allow(clippy::too_many_arguments)]
fn route_event<V: LogicValue>(
    topo: &LpTopology,
    me: usize,
    now: VirtualTime,
    e: Event<V>,
    queue: &mut BinaryHeapQueue<V>,
    stats: &mut SimStats,
    sent_min: &mut Option<VirtualTime>,
    cx: &mut RoundCx<'_, '_, Event<V>>,
) {
    stats.events_scheduled += 1;
    let mut to_self = false;
    for &dst in topo.destinations(e.net) {
        if dst == me {
            to_self = true;
            queue.push(e);
        } else {
            stats.messages_sent += 1;
            if cx.probe.enabled() {
                let t = cx.probe.now_ns();
                cx.probe.emit(
                    t,
                    now.ticks(),
                    me as u32,
                    e.net.index() as u32,
                    TraceKind::MessageSend,
                    dst as u64,
                );
            }
            *sent_min = Some(sent_min.map_or(e.time, |m| m.min(e.time)));
            cx.send_lp(dst, e);
        }
    }
    // A driver whose own block is not among the destinations still
    // tracks its output value locally.
    if !to_self {
        queue.push(e);
    }
}

/// The synchronous discipline: every worker steps at the same global time.
struct BarrierProtocol;

/// Per-worker state: one LP (= partition block) with a private event queue.
struct SyncWorker<V> {
    owned: Vec<GateId>,
    core: LpCore<V>,
    queue: BinaryHeapQueue<V>,
    first: bool,
    stats: SimStats,
}

impl<V: LogicValue> SyncProtocol<V> for BarrierProtocol {
    type Msg = Event<V>;
    type Worker = SyncWorker<V>;
    /// Earliest pending timestamp: min(queue head, earliest send this round).
    type Report = Option<VirtualTime>;
    /// The globally agreed step time of the next round.
    type Verdict = VirtualTime;

    fn worker(
        &self,
        fabric: &Fabric<'_>,
        worker: usize,
        preloads: Vec<Vec<Event<V>>>,
    ) -> SyncWorker<V> {
        let circuit = fabric.circuit();
        let owned = fabric.topo().lps()[worker].gates.clone();
        let observe = fabric.observe();
        let core =
            LpCore::new(circuit, owned.iter().copied().filter(|&id| observe.wants(circuit, id)));
        let mut queue = BinaryHeapQueue::new();
        for events in preloads {
            for e in events {
                queue.push(e);
            }
        }
        SyncWorker { owned, core, queue, first: true, stats: SimStats::default() }
    }

    fn first_verdict(&self) -> VirtualTime {
        VirtualTime::ZERO
    }

    fn round(
        &self,
        fabric: &Fabric<'_>,
        state: &mut SyncWorker<V>,
        verdict: &VirtualTime,
        cx: &mut RoundCx<'_, '_, Event<V>>,
    ) -> Option<VirtualTime> {
        let circuit = fabric.circuit();
        let topo = fabric.topo();
        let me = cx.worker;
        for e in cx.inbox.drain(..) {
            state.queue.push(e);
        }
        // The first round always runs at t = 0 (initial evaluation), even
        // when the earliest queued event is later; every worker takes this
        // branch in the same round, keeping the rounds aligned.
        let now = if state.first { VirtualTime::ZERO } else { *verdict };

        state.core.begin_batch();
        cx.note_progress(me, now);

        // Phase 1: apply local events at `now`.
        let mut popped = 0u64;
        while state.queue.peek_time() == Some(now) {
            let e = state.queue.pop().expect("peeked");
            state.stats.events_processed += 1;
            popped += 1;
            if cx.probe.enabled() {
                let t = cx.probe.now_ns();
                cx.probe.emit(
                    t,
                    now.ticks(),
                    me as u32,
                    e.net.index() as u32,
                    TraceKind::Dequeue,
                    state.queue.len() as u64,
                );
            }
            if state.core.apply_event(now, &e).is_some() {
                state.core.mark_fanout(circuit, topo, me, e.net);
            }
        }
        if state.first {
            state.core.mark_owned_non_source(circuit, &state.owned);
            state.first = false;
        }
        cx.charge_events(popped);

        // Phase 2: evaluate the dirty batch and distribute. The compiled
        // path runs it through the LP's bytecode (one dispatch per
        // same-kind run); the interpreted path walks gate by gate. Both
        // produce identical results: the event queue orders by
        // (time, net), so within-batch emission order is immaterial.
        let mut sent_min: Option<VirtualTime> = None;
        let dirty = state.core.take_dirty_sorted();
        state.stats.gate_evaluations += dirty.len() as u64;
        if let Some(block) = fabric.compiled_block(me) {
            if cx.probe.enabled() && !dirty.is_empty() {
                let t = cx.probe.now_ns();
                cx.probe.emit(
                    t,
                    now.ticks(),
                    me as u32,
                    me as u32,
                    TraceKind::GateEval,
                    dirty.len() as u64,
                );
            }
            let SyncWorker { core, queue, stats, .. } = state;
            core.evaluate_compiled(block, &dirty, &mut |id, v, delay| {
                let e = Event::new(now + Delay::new(u64::from(delay)), id, v);
                route_event(topo, me, now, e, queue, stats, &mut sent_min, cx);
            });
        } else {
            for &id in &dirty {
                if cx.probe.enabled() {
                    let t = cx.probe.now_ns();
                    cx.probe.emit(
                        t,
                        now.ticks(),
                        me as u32,
                        id.index() as u32,
                        TraceKind::GateEval,
                        1,
                    );
                }
                if let Some(v) = state.core.evaluate(circuit, id) {
                    let e = Event::new(now + circuit.delay(id), id, v);
                    route_event(
                        topo,
                        me,
                        now,
                        e,
                        &mut state.queue,
                        &mut state.stats,
                        &mut sent_min,
                        cx,
                    );
                }
            }
        }
        state.core.recycle_dirty(dirty);

        match (state.queue.peek_time(), sent_min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn decide(
        &self,
        _fabric: &Fabric<'_>,
        reports: &mut [Option<Option<VirtualTime>>],
        cx: &mut DecideCx<'_>,
    ) -> Decision<VirtualTime> {
        let next = reports.iter().filter_map(|r| r.flatten()).min();
        match next {
            Some(t) if t <= cx.until => {
                // Nothing is pending below the next step time, so every
                // earlier event is final — the budget-truncation frontier.
                cx.note_frontier(t);
                Decision::Continue(t)
            }
            _ => Decision::Stop,
        }
    }

    fn finish(
        &self,
        _fabric: &Fabric<'_>,
        _worker: usize,
        mut state: SyncWorker<V>,
    ) -> WorkerOutput<V> {
        WorkerOutput {
            owned_values: state.core.owned_values(&state.owned),
            waveforms: state.core.take_waveforms(),
            stats: state.stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim_core::SequentialSimulator;
    use parsim_logic::{Bit, Logic4};
    use parsim_netlist::{bench, generate, Circuit, DelayModel};
    use parsim_partition::{FiducciaMattheyses, GateWeights, Partitioner};

    fn check_equivalent<V: LogicValue>(c: &Circuit, stim: &Stimulus, until: u64, p: usize) {
        let part = FiducciaMattheyses::default().partition(c, p, &GateWeights::uniform(c.len()));
        let threaded = ThreadedSyncSimulator::<V>::new(part).with_observe(Observe::AllNets).run(
            c,
            stim,
            VirtualTime::new(until),
        );
        let seq = SequentialSimulator::<V>::new().with_observe(Observe::AllNets).run(
            c,
            stim,
            VirtualTime::new(until),
        );
        if let Some(d) = threaded.divergence_from(&seq) {
            panic!("threaded synchronous kernel diverged on {}: {d}", c.name());
        }
    }

    #[test]
    fn matches_sequential_on_combinational() {
        check_equivalent::<Bit>(&bench::c17(), &Stimulus::random(1, 8), 200, 3);
        let c = generate::ripple_adder(12, DelayModel::PerKind);
        check_equivalent::<Logic4>(&c, &Stimulus::counting(30), 600, 4);
    }

    #[test]
    fn matches_sequential_on_sequential_circuits() {
        let c = generate::lfsr(8, DelayModel::Unit);
        check_equivalent::<Bit>(&c, &Stimulus::quiet(1000).with_clock(5), 400, 4);
    }

    #[test]
    fn matches_sequential_on_random_dags() {
        for seed in 0..3 {
            let c = generate::random_dag(&generate::RandomDagConfig {
                gates: 200,
                seq_fraction: 0.1,
                delays: DelayModel::Uniform { min: 1, max: 9, seed },
                seed,
                ..Default::default()
            });
            check_equivalent::<Bit>(&c, &Stimulus::random(seed, 12).with_clock(7), 300, 4);
        }
    }

    #[test]
    fn single_worker_degenerates_to_sequential() {
        let c = bench::c17();
        check_equivalent::<Bit>(&c, &Stimulus::random(2, 5), 150, 1);
    }

    #[test]
    fn compiled_execution_is_bit_identical() {
        for seed in 0..2 {
            let c = generate::random_dag(&generate::RandomDagConfig {
                gates: 250,
                seq_fraction: 0.15,
                delays: DelayModel::Uniform { min: 1, max: 6, seed },
                seed,
                ..Default::default()
            });
            let stim = Stimulus::random(seed, 10).with_clock(6);
            let part =
                FiducciaMattheyses::default().partition(&c, 3, &GateWeights::uniform(c.len()));
            let until = VirtualTime::new(250);
            let interpreted = ThreadedSyncSimulator::<Logic4>::new(part.clone())
                .with_observe(Observe::AllNets)
                .run(&c, &stim, until);
            let compiled = ThreadedSyncSimulator::<Logic4>::new(part)
                .with_compiled()
                .with_observe(Observe::AllNets)
                .run(&c, &stim, until);
            if let Some(d) = compiled.divergence_from(&interpreted) {
                panic!("compiled sync kernel diverged (seed {seed}): {d}");
            }
        }
    }
}
