//! The modeled synchronous kernel.

use std::collections::BTreeMap;
use std::marker::PhantomData;

use parsim_core::{
    evaluate_gate, GateRuntime, Observe, SimOutcome, SimStats, Simulator, Stimulus, Waveform,
};
use parsim_event::{BinaryHeapQueue, Event, EventQueue, VirtualTime};
use parsim_logic::{GateKind, LogicValue};
use parsim_machine::{MachineConfig, VirtualMachine};
use parsim_netlist::{Circuit, GateId};
use parsim_partition::Partition;
use parsim_trace::{Probe, TraceKind};

/// The synchronous global-clock kernel on the virtual multiprocessor.
///
/// Each superstep: every processor retrieves its events at the common
/// simulated time, applies them, evaluates its affected gates, distributes
/// output events (paying message costs for cross-block fanout), and then all
/// processors barrier to agree on the next event time. Modeled time advances
/// per the [`MachineConfig`] price list; logical results are bit-identical
/// to the sequential reference.
///
/// See the crate docs for an example.
#[derive(Debug, Clone)]
pub struct SyncSimulator<V> {
    partition: Partition,
    machine: MachineConfig,
    observe: Observe,
    probe: Probe,
    _values: PhantomData<V>,
}

impl<V: LogicValue> SyncSimulator<V> {
    /// Creates the kernel over a partition, one block per processor.
    ///
    /// # Panics
    ///
    /// Panics if the partition's block count differs from the machine's
    /// processor count.
    pub fn new(partition: Partition, machine: MachineConfig) -> Self {
        assert_eq!(
            partition.blocks(),
            machine.processors,
            "synchronous kernel needs one partition block per processor"
        );
        SyncSimulator {
            partition,
            machine,
            observe: Observe::Outputs,
            probe: Probe::disabled(),
            _values: PhantomData,
        }
    }

    /// Selects which nets to record waveforms for.
    pub fn with_observe(mut self, observe: Observe) -> Self {
        self.observe = observe;
        self
    }

    /// Attaches a trace probe. The virtual machine records charge, idle and
    /// barrier-wait spans on the modeled cost-unit timeline; the kernel adds
    /// queue operations, gate evaluations and cross-block message sends at
    /// the same timeline positions.
    pub fn with_probe(mut self, probe: Probe) -> Self {
        self.probe = probe;
        self
    }

    /// The partition driving gate placement.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }
}

impl<V: LogicValue> Simulator<V> for SyncSimulator<V> {
    fn name(&self) -> String {
        format!("synchronous(P={})", self.machine.processors)
    }

    fn run(&self, circuit: &Circuit, stimulus: &Stimulus, until: VirtualTime) -> SimOutcome<V> {
        assert_eq!(self.partition.len(), circuit.len(), "partition does not match circuit");
        assert!(
            circuit.min_gate_delay().ticks() >= 1,
            "simulation kernels require nonzero gate delays"
        );
        let n = circuit.len();
        let p_count = self.machine.processors;
        let mut vm = VirtualMachine::new(self.machine);
        vm.attach_probe(&self.probe);
        let mut ph = self.probe.handle();
        let mut stats = SimStats::default();

        let mut values = vec![V::ZERO; n];
        let mut runtime = vec![GateRuntime::<V>::default(); n];
        let mut waveforms: BTreeMap<GateId, Waveform<V>> = circuit
            .ids()
            .filter(|&id| self.observe.wants(circuit, id))
            .map(|id| (id, Waveform::new(V::ZERO)))
            .collect();

        // Per-processor pending event queues. An event on net `g` is
        // delivered to every processor owning a fanout gate of `g`, plus the
        // owner of `g` itself (which maintains the authoritative net value).
        let mut queues: Vec<BinaryHeapQueue<V>> =
            (0..p_count).map(|_| BinaryHeapQueue::new()).collect();

        let block_of = |id: GateId| self.partition.block_of(id);
        let dests = |id: GateId| -> Vec<usize> {
            let mut d: Vec<usize> = circuit.fanout(id).iter().map(|e| block_of(e.gate)).collect();
            d.push(block_of(id));
            d.sort_unstable();
            d.dedup();
            d
        };

        // Logical (deduplicated) event production count, for the modeled
        // sequential-work baseline.
        let mut logical_events = 0u64;

        // Initialization: stimulus and constants. Distribution costs are not
        // charged — loading the testbench is setup, not simulation.
        let mut initial: Vec<Event<V>> = stimulus.events::<V>(circuit, until);
        for (id, g) in circuit.iter() {
            if g.kind() == GateKind::Const1 {
                initial.push(Event::new(VirtualTime::ZERO, id, V::ONE));
            }
        }
        for e in &initial {
            logical_events += 1;
            stats.events_scheduled += 1;
            for &q in &dests(e.net) {
                queues[q].push(*e);
            }
        }

        // Per-processor dirty sets (stamped).
        let mut stamp = vec![u64::MAX; n];
        let mut stamp_counter = 0u64;
        // Deduplicated value application within a step.
        let mut applied_stamp = vec![u64::MAX; n];

        let mut evals = 0u64;
        let mut first_step = true;

        loop {
            // The first step always runs at t = 0 (initial evaluation),
            // even when the earliest queued event is later.
            let now = if first_step {
                VirtualTime::ZERO
            } else {
                match queues.iter().filter_map(EventQueue::peek_time).min() {
                    Some(t) if t <= until => t,
                    _ => break,
                }
            };
            stamp_counter += 1;
            let mut dirty: Vec<Vec<GateId>> = vec![Vec::new(); p_count];

            // Phase 1: every processor retrieves and applies its events.
            for (p, queue) in queues.iter_mut().enumerate() {
                while queue.peek_time() == Some(now) {
                    let e = queue.pop().expect("peeked");
                    vm.charge(p, self.machine.event_cost);
                    if ph.enabled() {
                        ph.emit(
                            vm.clock(p),
                            now.ticks(),
                            p as u32,
                            e.net.index() as u32,
                            TraceKind::Dequeue,
                            queue.len() as u64,
                        );
                    }
                    // The block owning the net applies it authoritatively
                    // (counts once); readers apply to their local copy
                    // (modeled by the shared array — no second write
                    // needed, but the event cost above is still paid).
                    if applied_stamp[e.net.index()] != stamp_counter {
                        applied_stamp[e.net.index()] = stamp_counter;
                        stats.events_processed += 1;
                        if values[e.net.index()] == e.value {
                            continue;
                        }
                        values[e.net.index()] = e.value;
                        if let Some(w) = waveforms.get_mut(&e.net) {
                            w.record(now, e.value);
                        }
                        for entry in circuit.fanout(e.net) {
                            if stamp[entry.gate.index()] != stamp_counter {
                                stamp[entry.gate.index()] = stamp_counter;
                                dirty[block_of(entry.gate)].push(entry.gate);
                            }
                        }
                    }
                }
            }
            if first_step {
                for (id, g) in circuit.iter() {
                    if !g.kind().is_source() && stamp[id.index()] != stamp_counter {
                        stamp[id.index()] = stamp_counter;
                        dirty[block_of(id)].push(id);
                    }
                }
                first_step = false;
            }

            // Phase 2: each processor evaluates its dirty gates and
            // distributes the resulting events.
            for (p, dirty_p) in dirty.iter_mut().enumerate() {
                dirty_p.sort_unstable();
                for &id in dirty_p.iter() {
                    vm.charge(p, self.machine.eval_cost);
                    evals += 1;
                    stats.gate_evaluations += 1;
                    if ph.enabled() {
                        ph.emit(
                            vm.clock(p),
                            now.ticks(),
                            p as u32,
                            id.index() as u32,
                            TraceKind::GateEval,
                            1,
                        );
                    }
                    let out = evaluate_gate(
                        circuit,
                        id,
                        &mut |f| values[f.index()],
                        &mut runtime[id.index()],
                    );
                    if let Some(v) = out {
                        let e = Event::new(now + circuit.delay(id), id, v);
                        logical_events += 1;
                        stats.events_scheduled += 1;
                        for &q in &dests(id) {
                            queues[q].push(e);
                            if q == p {
                                vm.charge(p, self.machine.event_cost);
                            } else {
                                // Remote delivery: sender pays the send,
                                // receiver pays the receive (the barrier
                                // hides the latency).
                                let _ready = vm.send(p, q);
                                vm.charge(q, self.machine.recv_cost);
                                stats.messages_sent += 1;
                                if ph.enabled() {
                                    ph.emit(
                                        vm.clock(p),
                                        now.ticks(),
                                        p as u32,
                                        id.index() as u32,
                                        TraceKind::MessageSend,
                                        q as u64,
                                    );
                                }
                            }
                            if ph.enabled() {
                                ph.emit(
                                    vm.clock(q),
                                    e.time.ticks(),
                                    q as u32,
                                    id.index() as u32,
                                    TraceKind::Enqueue,
                                    queues[q].len() as u64,
                                );
                            }
                        }
                    }
                }
            }

            // Phase 3: barrier to agree on the next simulated time.
            vm.barrier();
            stats.barriers += 1;
        }

        stats.modeled_makespan = vm.makespan();
        stats.modeled_work =
            evals * self.machine.eval_cost + 2 * logical_events * self.machine.event_cost;
        SimOutcome { final_values: values, waveforms, end_time: until, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim_core::SequentialSimulator;
    use parsim_logic::{Bit, Logic4};
    use parsim_netlist::{bench, generate, DelayModel};
    use parsim_partition::{ConePartitioner, GateWeights, Partitioner, RoundRobinPartitioner};

    fn partition(c: &Circuit, p: usize) -> Partition {
        ConePartitioner.partition(c, p, &GateWeights::uniform(c.len()))
    }

    fn check_equivalent<V: LogicValue>(c: &Circuit, stim: &Stimulus, until: u64, p: usize) {
        let sync = SyncSimulator::<V>::new(partition(c, p), MachineConfig::shared_memory(p))
            .with_observe(Observe::AllNets)
            .run(c, stim, VirtualTime::new(until));
        let seq = SequentialSimulator::<V>::new().with_observe(Observe::AllNets).run(
            c,
            stim,
            VirtualTime::new(until),
        );
        if let Some(d) = sync.divergence_from(&seq) {
            panic!("synchronous kernel diverged on {}: {d}", c.name());
        }
    }

    #[test]
    fn matches_sequential_on_c17() {
        check_equivalent::<Bit>(&bench::c17(), &Stimulus::random(5, 7), 200, 4);
        check_equivalent::<Logic4>(&bench::c17(), &Stimulus::counting(9), 300, 3);
    }

    #[test]
    fn matches_sequential_on_sequential_circuits() {
        let c = generate::lfsr(10, DelayModel::Unit);
        check_equivalent::<Bit>(&c, &Stimulus::quiet(1000).with_clock(4), 300, 4);
        let c = generate::counter(6, DelayModel::PerKind);
        check_equivalent::<Bit>(&c, &Stimulus::quiet(1000).with_clock(16), 600, 8);
    }

    #[test]
    fn matches_sequential_on_random_dags_with_heterogeneous_delays() {
        for seed in 0..4 {
            let c = generate::random_dag(&generate::RandomDagConfig {
                gates: 250,
                seq_fraction: 0.15,
                delays: DelayModel::Uniform { min: 1, max: 13, seed },
                seed,
                ..Default::default()
            });
            check_equivalent::<Logic4>(&c, &Stimulus::random(seed, 11).with_clock(6), 250, 8);
        }
    }

    #[test]
    fn modeled_speedup_above_one_on_wide_circuits() {
        let c = generate::array_multiplier(12, DelayModel::Unit);
        let p = 8;
        let out = SyncSimulator::<Bit>::new(partition(&c, p), MachineConfig::shared_memory(p)).run(
            &c,
            &Stimulus::random(3, 40),
            VirtualTime::new(800),
        );
        let speedup = out.stats.modeled_speedup().expect("modeled kernel reports speedup");
        assert!(speedup > 1.5, "expected parallel benefit, got {speedup:.2}");
        assert!(speedup <= p as f64 + 0.01, "speedup {speedup:.2} cannot beat P={p}");
        assert!(out.stats.barriers > 0);
    }

    #[test]
    fn bad_partition_hurts_modeled_performance() {
        // Round-robin (max cut) must send more messages than cones.
        let c = generate::mesh(16, 16, DelayModel::Unit);
        let stim = Stimulus::random(2, 25);
        let until = VirtualTime::new(500);
        let w = GateWeights::uniform(c.len());
        let good = SyncSimulator::<Bit>::new(
            parsim_partition::FiducciaMattheyses::default().partition(&c, 8, &w),
            MachineConfig::shared_memory(8),
        )
        .run(&c, &stim, until);
        let bad = SyncSimulator::<Bit>::new(
            RoundRobinPartitioner.partition(&c, 8, &w),
            MachineConfig::shared_memory(8),
        )
        .run(&c, &stim, until);
        assert!(
            bad.stats.messages_sent > good.stats.messages_sent,
            "round-robin should send more messages ({} vs {})",
            bad.stats.messages_sent,
            good.stats.messages_sent
        );
        assert_eq!(good.divergence_from(&bad), None, "partition must not affect results");
    }

    #[test]
    #[should_panic(expected = "one partition block per processor")]
    fn mismatched_partition_rejected() {
        let c = bench::c17();
        SyncSimulator::<Bit>::new(partition(&c, 4), MachineConfig::shared_memory(8));
    }
}
