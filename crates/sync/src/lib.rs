//! The synchronous (global-clock) parallel kernel.
//!
//! "The simplest event-driven algorithm is the synchronous technique. Here,
//! the simulated time at all of the LPs is constrained to be the same. The
//! LPs process their events at the present simulated time and then
//! coordinate (typically via a barrier synchronization) to determine the
//! next point in simulated time that has events to be processed"
//! (Chamberlain, DAC '95 §IV).
//!
//! Two implementations share the algorithm:
//!
//! * [`SyncSimulator`] — the *modeled* kernel: executes the superstep
//!   protocol while charging every action to a
//!   [`VirtualMachine`](parsim_machine::VirtualMachine), producing the
//!   modeled speedups of Figure 1 / E3 / E8 / E9. Deterministic.
//! * [`ThreadedSyncSimulator`] — the same protocol on real `std::thread`
//!   workers with crossbeam channels and a `std::sync::Barrier`; used for
//!   wall-clock measurements on real multiprocessors and as a second
//!   correctness witness.
//!
//! Both produce logical results identical to the sequential reference — the
//! differential tests at the bottom of this crate enforce it.
//!
//! # Examples
//!
//! ```
//! use parsim_core::{SequentialSimulator, Simulator, Stimulus};
//! use parsim_event::VirtualTime;
//! use parsim_logic::Bit;
//! use parsim_machine::MachineConfig;
//! use parsim_netlist::{generate, DelayModel};
//! use parsim_partition::{ConePartitioner, GateWeights, Partitioner};
//! use parsim_sync::SyncSimulator;
//!
//! let c = generate::ripple_adder(16, DelayModel::Unit);
//! let part = ConePartitioner.partition(&c, 8, &GateWeights::uniform(c.len()));
//! let sim = SyncSimulator::<Bit>::new(part, MachineConfig::shared_memory(8));
//! let stim = Stimulus::random(1, 20);
//! let out = sim.run(&c, &stim, VirtualTime::new(400));
//! let reference = SequentialSimulator::<Bit>::new().run(&c, &stim, VirtualTime::new(400));
//! assert_eq!(out.divergence_from(&reference), None);
//! assert!(out.stats.barriers > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod modeled;
mod threaded;

pub use modeled::SyncSimulator;
pub use threaded::ThreadedSyncSimulator;
