//! Compiling a circuit into a levelized straight-line evaluation schedule.

use parsim_logic::GateKind;
use parsim_netlist::{Circuit, GateId, Levelization};

/// One compiled evaluation: a gate, its kind, and a slice of the flat
/// fanin array.
#[derive(Debug, Clone, Copy)]
pub struct CompiledOp {
    /// The gate (and the net it drives).
    pub gate: GateId,
    /// What to evaluate.
    pub kind: GateKind,
    /// For sequential ops, the index of this op's `(prev_clk, q)` slot;
    /// `usize::MAX` for combinational ops.
    pub seq_slot: usize,
    fanin_start: u32,
    fanin_len: u32,
}

/// A circuit compiled for oblivious bit-parallel evaluation: every
/// non-source gate exactly once, grouped by topological level.
///
/// The kernel is double-buffered (tick `t` values are a pure function of
/// tick `t − 1` values), so the level grouping is not needed for
/// correctness — it provides cache-friendly straight-line order, the unit
/// of work for thread sharding, and the span boundaries the trace probes
/// charge.
#[derive(Debug, Clone)]
pub struct CompiledCircuit {
    ops: Vec<CompiledOp>,
    fanins: Vec<GateId>,
    /// `ops` index range of each level, ascending.
    levels: Vec<std::ops::Range<usize>>,
    seq_ops: usize,
    nets: usize,
}

impl CompiledCircuit {
    /// Compiles `circuit` into a levelized straight-line schedule.
    ///
    /// # Panics
    ///
    /// Panics if any non-source gate has a delay other than one tick — the
    /// oblivious discipline's precondition, shared with
    /// `ObliviousSimulator`.
    pub fn compile(circuit: &Circuit) -> Self {
        for (_, g) in circuit.iter() {
            assert!(
                g.kind().is_source() || g.delay().ticks() == 1,
                "bit-parallel simulation requires unit gate delays, found {} on a {}",
                g.delay(),
                g.kind()
            );
        }
        let lv = Levelization::of(circuit);
        let mut ops = Vec::new();
        let mut fanins: Vec<GateId> = Vec::new();
        let mut levels = Vec::new();
        let mut seq_ops = 0usize;
        for level in lv.by_level() {
            let start = ops.len();
            for id in level {
                let g = circuit.gate(id);
                if g.kind().is_source() {
                    continue;
                }
                let fanin_start = fanins.len() as u32;
                fanins.extend_from_slice(g.fanin());
                let seq_slot = if g.kind().is_sequential() {
                    seq_ops += 1;
                    seq_ops - 1
                } else {
                    usize::MAX
                };
                ops.push(CompiledOp {
                    gate: id,
                    kind: g.kind(),
                    seq_slot,
                    fanin_start,
                    fanin_len: g.fanin().len() as u32,
                });
            }
            if ops.len() > start {
                levels.push(start..ops.len());
            }
        }
        CompiledCircuit { ops, fanins, levels, seq_ops, nets: circuit.len() }
    }

    /// The straight-line schedule, in level order.
    pub fn ops(&self) -> &[CompiledOp] {
        &self.ops
    }

    /// Per-level `ops` index ranges, ascending by level.
    pub fn levels(&self) -> &[std::ops::Range<usize>] {
        &self.levels
    }

    /// The fanin nets of `op`.
    pub fn fanin(&self, op: &CompiledOp) -> &[GateId] {
        &self.fanins[op.fanin_start as usize..(op.fanin_start + op.fanin_len) as usize]
    }

    /// Number of sequential (state-carrying) ops.
    pub fn seq_ops(&self) -> usize {
        self.seq_ops
    }

    /// Number of nets in the source circuit.
    pub fn nets(&self) -> usize {
        self.nets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim_netlist::{bench, generate, DelayModel};

    #[test]
    fn schedule_covers_every_non_source_gate_once() {
        let c = generate::random_dag(&generate::RandomDagConfig {
            gates: 300,
            seq_fraction: 0.2,
            seed: 9,
            ..Default::default()
        });
        let cc = CompiledCircuit::compile(&c);
        let mut seen = vec![false; c.len()];
        for op in cc.ops() {
            assert!(!seen[op.gate.index()], "gate scheduled twice");
            seen[op.gate.index()] = true;
            assert!(!c.kind(op.gate).is_source());
            assert_eq!(cc.fanin(op), c.fanin(op.gate));
        }
        let scheduled = seen.iter().filter(|&&s| s).count();
        let sources = c.iter().filter(|(_, g)| g.kind().is_source()).count();
        assert_eq!(scheduled + sources, c.len());
        assert_eq!(cc.levels().iter().map(ExactSizeIterator::len).sum::<usize>(), cc.ops().len());
    }

    #[test]
    fn levels_respect_combinational_topology() {
        let c = bench::c17();
        let cc = CompiledCircuit::compile(&c);
        // Within the schedule, a combinational gate appears after all of
        // its non-source fanins.
        let mut pos = vec![usize::MAX; c.len()];
        for (i, op) in cc.ops().iter().enumerate() {
            pos[op.gate.index()] = i;
        }
        for op in cc.ops() {
            if c.kind(op.gate).is_sequential() {
                continue;
            }
            for &f in cc.fanin(op) {
                if pos[f.index()] != usize::MAX {
                    assert!(pos[f.index()] < pos[op.gate.index()]);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "unit gate delays")]
    fn rejects_non_unit_delays() {
        let c = generate::ripple_adder(2, DelayModel::PerKind);
        let _ = CompiledCircuit::compile(&c);
    }
}
