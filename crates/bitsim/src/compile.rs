//! The bit-parallel specialization of the workspace compiler.
//!
//! The netlist-to-bytecode lowering lives in `parsim-compile` (one
//! compiler, every backend); this module adds the oblivious bit-parallel
//! precondition — unit gate delays — and re-exposes the block under the
//! names the kernel grew up with.

use parsim_netlist::Circuit;

pub use parsim_compile::{CompiledBlock, Op as CompiledOp};

/// A circuit compiled for oblivious bit-parallel evaluation: the
/// whole-circuit [`CompiledBlock`] (every non-source gate exactly once,
/// sequential section first, then combinational levels, kind-sorted within
/// each section), checked against the kernel's unit-delay precondition.
///
/// The kernel is double-buffered (tick `t` values are a pure function of
/// tick `t − 1` values), so the schedule order is not needed for
/// correctness — it provides cache-friendly straight-line order, the unit
/// of work for thread sharding, and the span boundaries the trace probes
/// charge.
///
/// Derefs to [`CompiledBlock`], so all block accessors ([`ops`],
/// [`levels`], [`fanin`], [`seq_ops`], [`nets`]) are available directly.
///
/// [`ops`]: CompiledBlock::ops
/// [`levels`]: CompiledBlock::levels
/// [`fanin`]: CompiledBlock::fanin
/// [`seq_ops`]: CompiledBlock::seq_ops
/// [`nets`]: CompiledBlock::nets
#[derive(Debug, Clone)]
pub struct CompiledCircuit(CompiledBlock);

impl CompiledCircuit {
    /// Compiles `circuit` into a levelized straight-line schedule.
    ///
    /// # Panics
    ///
    /// Panics if any non-source gate has a delay other than one tick — the
    /// oblivious discipline's precondition, shared with
    /// `ObliviousSimulator`.
    pub fn compile(circuit: &Circuit) -> Self {
        for (_, g) in circuit.iter() {
            assert!(
                g.kind().is_source() || g.delay().ticks() == 1,
                "bit-parallel simulation requires unit gate delays, found {} on a {}",
                g.delay(),
                g.kind()
            );
        }
        CompiledCircuit(CompiledBlock::compile(circuit))
    }
}

impl std::ops::Deref for CompiledCircuit {
    type Target = CompiledBlock;

    fn deref(&self) -> &CompiledBlock {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim_netlist::{bench, generate, DelayModel};

    #[test]
    fn schedule_covers_every_non_source_gate_once() {
        let c = generate::random_dag(&generate::RandomDagConfig {
            gates: 300,
            seq_fraction: 0.2,
            seed: 9,
            ..Default::default()
        });
        let cc = CompiledCircuit::compile(&c);
        let mut seen = vec![false; c.len()];
        for op in cc.ops() {
            assert!(!seen[op.gate.index()], "gate scheduled twice");
            seen[op.gate.index()] = true;
            assert!(!c.kind(op.gate).is_source());
            assert_eq!(cc.fanin(op), c.fanin(op.gate));
        }
        let scheduled = seen.iter().filter(|&&s| s).count();
        let sources = c.iter().filter(|(_, g)| g.kind().is_source()).count();
        assert_eq!(scheduled + sources, c.len());
        assert_eq!(cc.levels().iter().map(ExactSizeIterator::len).sum::<usize>(), cc.ops().len());
    }

    #[test]
    fn levels_respect_combinational_topology() {
        let c = bench::c17();
        let cc = CompiledCircuit::compile(&c);
        // Within the schedule, a combinational gate appears after all of
        // its scheduled fanins (sequential fanins sit in the up-front
        // sequential section, so they are always earlier).
        let mut pos = vec![usize::MAX; c.len()];
        for (i, op) in cc.ops().iter().enumerate() {
            pos[op.gate.index()] = i;
        }
        for op in cc.ops() {
            if c.kind(op.gate).is_sequential() {
                continue;
            }
            for &f in cc.fanin(op) {
                if pos[f.index()] != usize::MAX {
                    assert!(pos[f.index()] < pos[op.gate.index()]);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "unit gate delays")]
    fn rejects_non_unit_delays() {
        let c = generate::ripple_adder(2, DelayModel::PerKind);
        let _ = CompiledCircuit::compile(&c);
    }
}
