//! Packed lane representations: 64 scalar logic values per machine word.
//!
//! Every operation here is *lane-exact*: lane `k` of a packed operation
//! equals the corresponding scalar [`LogicValue`] operation applied to
//! lane `k` of the operands. The unit tests enumerate every operand
//! combination per gate kind and check each lane against
//! [`eval_combinational`](parsim_logic::eval_combinational) /
//! [`eval_dff`](parsim_logic::eval_dff) /
//! [`eval_latch`](parsim_logic::eval_latch), so the bit-parallel kernel
//! inherits the workspace-wide gate semantics exactly.

use std::fmt::Debug;

use parsim_logic::{Bit, Logic4, LogicValue};

/// Lanes per packed word.
pub const LANES: usize = 64;

/// A `u64`-backed bundle of [`LANES`] independent logic values.
///
/// The mapping from scalars to planes differs per value system
/// ([`PackedBit`] uses one plane, [`PackedLogic4`] two), but the contract
/// is shared: `op(a, b).lane(k) == op(a.lane(k), b.lane(k))` for every
/// operation and every lane — the determinism contract that lets a packed
/// run stand in for 64 scalar runs.
pub trait PackedValue: Copy + Clone + Eq + Debug + Send + Sync + 'static {
    /// The scalar value system each lane carries.
    type Scalar: LogicValue;

    /// All lanes at the scalar default (`ZERO`).
    const ALL_ZERO: Self;

    /// Broadcasts one scalar into every lane.
    fn splat(v: Self::Scalar) -> Self;

    /// Extracts lane `k`.
    fn lane(self, k: usize) -> Self::Scalar;

    /// Replaces lane `k`.
    fn set_lane(&mut self, k: usize, v: Self::Scalar);

    /// Mask of lanes where `self` and `other` differ (bit `k` = lane `k`).
    fn diff_mask(self, other: Self) -> u64;

    /// Lane blend: takes `other` in the lanes of `mask`, `self` elsewhere.
    fn select(self, other: Self, mask: u64) -> Self;

    /// Lane-wise [`LogicValue::and`].
    fn and(self, other: Self) -> Self;
    /// Lane-wise [`LogicValue::or`].
    fn or(self, other: Self) -> Self;
    /// Lane-wise [`LogicValue::not`].
    fn not(self) -> Self;
    /// Lane-wise [`LogicValue::xor`].
    fn xor(self, other: Self) -> Self;
    /// Lane-wise [`LogicValue::resolve`] (bus resolution).
    fn resolve(self, other: Self) -> Self;

    /// Lane-wise 2-to-1 mux (`sel == 0` → `a`, `sel == 1` → `b`, unknown
    /// select → `a` where `a == b`, else `UNKNOWN`), matching the scalar
    /// `Mux2` evaluation.
    fn mux(sel: Self, a: Self, b: Self) -> Self;

    /// Lane-wise tri-state buffer (`enable == 1` → `data`, `0` → `HIGH_Z`,
    /// unknown → `UNKNOWN`), matching the scalar `Tribuf` evaluation.
    fn tribuf(enable: Self, data: Self) -> Self;

    /// Lane-wise rising-edge D flip-flop next state, matching
    /// [`eval_dff`](parsim_logic::eval_dff).
    fn dff(prev_clk: Self, clk: Self, d: Self, q: Self) -> Self;

    /// Lane-wise transparent latch next state, matching
    /// [`eval_latch`](parsim_logic::eval_latch).
    fn latch(enable: Self, d: Self, q: Self) -> Self;
}

/// 64 [`Bit`] lanes in one word: bit `k` is lane `k`'s value.
///
/// `Bit` collapses `UNKNOWN` and `HIGH_Z` to `Zero`, so one plane suffices
/// and every gate is one or two machine instructions per 64 patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct PackedBit(pub u64);

impl PackedValue for PackedBit {
    type Scalar = Bit;

    const ALL_ZERO: Self = PackedBit(0);

    fn splat(v: Bit) -> Self {
        PackedBit(if v.as_bool() { u64::MAX } else { 0 })
    }

    fn lane(self, k: usize) -> Bit {
        Bit::from_bool(self.0 >> k & 1 == 1)
    }

    fn set_lane(&mut self, k: usize, v: Bit) {
        let bit = 1u64 << k;
        if v.as_bool() {
            self.0 |= bit;
        } else {
            self.0 &= !bit;
        }
    }

    fn diff_mask(self, other: Self) -> u64 {
        self.0 ^ other.0
    }

    fn select(self, other: Self, mask: u64) -> Self {
        PackedBit((self.0 & !mask) | (other.0 & mask))
    }

    fn and(self, other: Self) -> Self {
        PackedBit(self.0 & other.0)
    }

    fn or(self, other: Self) -> Self {
        PackedBit(self.0 | other.0)
    }

    fn not(self) -> Self {
        PackedBit(!self.0)
    }

    fn xor(self, other: Self) -> Self {
        PackedBit(self.0 ^ other.0)
    }

    fn resolve(self, other: Self) -> Self {
        // Bit's bus resolution is wired-OR (HIGH_Z collapses to Zero).
        PackedBit(self.0 | other.0)
    }

    fn mux(sel: Self, a: Self, b: Self) -> Self {
        // Bit selects are always definite.
        PackedBit((a.0 & !sel.0) | (b.0 & sel.0))
    }

    fn tribuf(enable: Self, data: Self) -> Self {
        // Disabled lanes drive HIGH_Z = Zero.
        PackedBit(enable.0 & data.0)
    }

    fn dff(prev_clk: Self, clk: Self, d: Self, q: Self) -> Self {
        let rising = !prev_clk.0 & clk.0;
        PackedBit((d.0 & rising) | (q.0 & !rising))
    }

    fn latch(enable: Self, d: Self, q: Self) -> Self {
        PackedBit((d.0 & enable.0) | (q.0 & !enable.0))
    }
}

/// 64 [`Logic4`] lanes in two planes.
///
/// Lane `k` is encoded by bit `k` of the `(x, v)` planes:
/// `(0,0)` = `Zero`, `(0,1)` = `One`, `(1,0)` = `X`, `(1,1)` = `Z`.
/// Gate operations reduce to boolean masks over the planes — the same
/// 2-bits-per-signal technique production compiled simulators use for
/// 4-state X-propagation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct PackedLogic4 {
    /// Indeterminate plane: lane is `X` or `Z`.
    pub x: u64,
    /// Value plane: `One` when definite, distinguishes `Z` from `X` when not.
    pub v: u64,
}

impl PackedLogic4 {
    /// Lanes holding a definite `Zero`.
    fn def0(self) -> u64 {
        !self.x & !self.v
    }

    /// Lanes holding a definite `One`.
    fn def1(self) -> u64 {
        !self.x & self.v
    }

    /// Lanes holding `Z`.
    fn z(self) -> u64 {
        self.x & self.v
    }

    /// Lanes where `self` and `other` hold the same state (all four states
    /// distinguished — `X != Z` here, exactly like scalar `==`).
    fn eq_mask(self, other: Self) -> u64 {
        !((self.x ^ other.x) | (self.v ^ other.v))
    }

    fn from_planes(x: u64, v: u64) -> Self {
        PackedLogic4 { x, v }
    }
}

impl PackedValue for PackedLogic4 {
    type Scalar = Logic4;

    const ALL_ZERO: Self = PackedLogic4 { x: 0, v: 0 };

    fn splat(s: Logic4) -> Self {
        let (x, v) = match s {
            Logic4::Zero => (0, 0),
            Logic4::One => (0, u64::MAX),
            Logic4::X => (u64::MAX, 0),
            Logic4::Z => (u64::MAX, u64::MAX),
        };
        PackedLogic4 { x, v }
    }

    fn lane(self, k: usize) -> Logic4 {
        match (self.x >> k & 1, self.v >> k & 1) {
            (0, 0) => Logic4::Zero,
            (0, 1) => Logic4::One,
            (1, 0) => Logic4::X,
            _ => Logic4::Z,
        }
    }

    fn set_lane(&mut self, k: usize, s: Logic4) {
        let bit = 1u64 << k;
        let (x, v) = match s {
            Logic4::Zero => (false, false),
            Logic4::One => (false, true),
            Logic4::X => (true, false),
            Logic4::Z => (true, true),
        };
        self.x = if x { self.x | bit } else { self.x & !bit };
        self.v = if v { self.v | bit } else { self.v & !bit };
    }

    fn diff_mask(self, other: Self) -> u64 {
        (self.x ^ other.x) | (self.v ^ other.v)
    }

    fn select(self, other: Self, mask: u64) -> Self {
        PackedLogic4 {
            x: (self.x & !mask) | (other.x & mask),
            v: (self.v & !mask) | (other.v & mask),
        }
    }

    fn and(self, other: Self) -> Self {
        // Zero dominates; One ∧ One = One; anything else is X.
        let zero = self.def0() | other.def0();
        let one = self.def1() & other.def1();
        Self::from_planes(!(zero | one), one)
    }

    fn or(self, other: Self) -> Self {
        let one = self.def1() | other.def1();
        let zero = self.def0() & other.def0();
        Self::from_planes(!(one | zero), one)
    }

    fn not(self) -> Self {
        // Definite lanes invert; X and Z both become X.
        Self::from_planes(self.x, self.def0())
    }

    fn xor(self, other: Self) -> Self {
        // Defined only where both operands are definite; X elsewhere.
        let def = !self.x & !other.x;
        Self::from_planes(!def, (self.v ^ other.v) & def)
    }

    fn resolve(self, other: Self) -> Self {
        // Z yields to any driver; equal states agree; conflicts are X.
        let take_b = self.z();
        let take_a = !take_b & (other.z() | self.eq_mask(other));
        let conflict = !(take_a | take_b);
        Self::from_planes(
            (self.x & take_a) | (other.x & take_b) | conflict,
            (self.v & take_a) | (other.v & take_b),
        )
    }

    fn mux(sel: Self, a: Self, b: Self) -> Self {
        let s0 = sel.def0();
        let s1 = sel.def1();
        // Unknown select: the data inputs mask the X (a == b → a, else X).
        let su_agree = sel.x & a.eq_mask(b);
        let su_conflict = sel.x & !a.eq_mask(b);
        Self::from_planes(
            (a.x & s0) | (b.x & s1) | (a.x & su_agree) | su_conflict,
            (a.v & s0) | (b.v & s1) | (a.v & su_agree),
        )
    }

    fn tribuf(enable: Self, data: Self) -> Self {
        let e1 = enable.def1();
        let e0 = enable.def0();
        // Disabled lanes drive Z = (1,1); unknown enables drive X = (1,0).
        Self::from_planes((data.x & e1) | e0 | enable.x, (data.v & e1) | e0)
    }

    fn dff(prev_clk: Self, clk: Self, d: Self, q: Self) -> Self {
        let both_def = !prev_clk.x & !clk.x;
        let rising = prev_clk.def0() & clk.def1();
        let hold = both_def & !rising;
        // Indefinite clocks: the capture cannot be ruled in or out, so the
        // result is q where d already equals q and X otherwise.
        let unk_agree = !both_def & d.eq_mask(q);
        let unk_conflict = !both_def & !d.eq_mask(q);
        Self::from_planes(
            (d.x & rising) | (q.x & hold) | (q.x & unk_agree) | unk_conflict,
            (d.v & rising) | (q.v & hold) | (q.v & unk_agree),
        )
    }

    fn latch(enable: Self, d: Self, q: Self) -> Self {
        let e1 = enable.def1();
        let e0 = enable.def0();
        let unk_agree = enable.x & d.eq_mask(q);
        let unk_conflict = enable.x & !d.eq_mask(q);
        Self::from_planes(
            (d.x & e1) | (q.x & e0) | (q.x & unk_agree) | unk_conflict,
            (d.v & e1) | (q.v & e0) | (q.v & unk_agree),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim_logic::{eval_dff, eval_latch};

    /// Builds a packed word whose lanes sweep all combinations of `vals`
    /// across `arity` operands; returns one word per operand position.
    fn sweep<P: PackedValue>(vals: &[P::Scalar], arity: usize) -> Vec<P> {
        let combos = vals.len().pow(arity as u32);
        assert!(combos <= LANES, "sweep must fit the lane count");
        let mut words = vec![P::ALL_ZERO; arity];
        for lane in 0..combos {
            let mut rest = lane;
            for (pos, w) in words.iter_mut().enumerate() {
                let _ = pos;
                w.set_lane(lane, vals[rest % vals.len()]);
                rest /= vals.len();
            }
        }
        words
    }

    fn check_binary<P: PackedValue>(
        name: &str,
        packed: fn(P, P) -> P,
        scalar: fn(P::Scalar, P::Scalar) -> P::Scalar,
    ) {
        let vals = P::Scalar::all();
        let words = sweep::<P>(vals, 2);
        let got = packed(words[0], words[1]);
        for lane in 0..vals.len() * vals.len() {
            let (a, b) = (words[0].lane(lane), words[1].lane(lane));
            assert_eq!(got.lane(lane), scalar(a, b), "{name}({a:?}, {b:?})");
        }
    }

    fn check_binary_ops<P: PackedValue>() {
        check_binary::<P>("and", P::and, <P::Scalar as LogicValue>::and);
        check_binary::<P>("or", P::or, <P::Scalar as LogicValue>::or);
        check_binary::<P>("xor", P::xor, <P::Scalar as LogicValue>::xor);
        check_binary::<P>("resolve", P::resolve, <P::Scalar as LogicValue>::resolve);
        check_binary::<P>("tribuf", P::tribuf, |e, d| match e.to_bool() {
            Some(true) => d,
            Some(false) => <P::Scalar as LogicValue>::HIGH_Z,
            None => <P::Scalar as LogicValue>::UNKNOWN,
        });
        // not, via the sweep's first operand.
        let words = sweep::<P>(P::Scalar::all(), 1);
        let got = words[0].not();
        for lane in 0..P::Scalar::all().len() {
            assert_eq!(got.lane(lane), words[0].lane(lane).not(), "not lane {lane}");
        }
    }

    fn check_mux<P: PackedValue>() {
        let vals = P::Scalar::all();
        let words = sweep::<P>(vals, 3);
        let got = P::mux(words[0], words[1], words[2]);
        for lane in 0..vals.len().pow(3) {
            let (s, a, b) = (words[0].lane(lane), words[1].lane(lane), words[2].lane(lane));
            let want = parsim_logic::eval_combinational(parsim_logic::GateKind::Mux2, &[s, a, b]);
            assert_eq!(got.lane(lane), want, "mux({s:?}, {a:?}, {b:?})");
        }
    }

    fn check_latch<P: PackedValue>() {
        let vals = P::Scalar::all();
        let words = sweep::<P>(vals, 3);
        let got = P::latch(words[0], words[1], words[2]);
        for lane in 0..vals.len().pow(3) {
            let (e, d, q) = (words[0].lane(lane), words[1].lane(lane), words[2].lane(lane));
            assert_eq!(got.lane(lane), eval_latch(e, d, q).q, "latch({e:?}, {d:?}, {q:?})");
        }
    }

    /// DFF has four operands; 4⁴ = 256 Logic4 combinations exceed the lane
    /// count, so sweep the clock pair per-word and the (d, q) pair per-lane.
    fn check_dff<P: PackedValue>() {
        let vals = P::Scalar::all();
        for &pc in vals {
            for &clk in vals {
                let words = sweep::<P>(vals, 2);
                let got = P::dff(P::splat(pc), P::splat(clk), words[0], words[1]);
                for lane in 0..vals.len() * vals.len() {
                    let (d, q) = (words[0].lane(lane), words[1].lane(lane));
                    assert_eq!(
                        got.lane(lane),
                        eval_dff(pc, clk, d, q).q,
                        "dff({pc:?}, {clk:?}, {d:?}, {q:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn packed_bit_ops_are_lane_exact() {
        check_binary_ops::<PackedBit>();
        check_mux::<PackedBit>();
        check_latch::<PackedBit>();
        check_dff::<PackedBit>();
    }

    #[test]
    fn packed_logic4_ops_are_lane_exact() {
        check_binary_ops::<PackedLogic4>();
        check_mux::<PackedLogic4>();
        check_latch::<PackedLogic4>();
        check_dff::<PackedLogic4>();
    }

    #[test]
    fn lane_round_trip_and_diff_masks() {
        let mut w = PackedLogic4::ALL_ZERO;
        for (k, &v) in Logic4::all().iter().cycle().take(LANES).enumerate() {
            w.set_lane(k, v);
        }
        for (k, &v) in Logic4::all().iter().cycle().take(LANES).enumerate() {
            assert_eq!(w.lane(k), v);
        }
        let mut u = w;
        u.set_lane(7, Logic4::One);
        u.set_lane(40, Logic4::X);
        let diff = w.diff_mask(u);
        assert_eq!(diff, ((w.lane(7) != u.lane(7)) as u64 * (1 << 7)) | (1 << 40));
        assert_eq!(w.select(u, diff), u);
        assert_eq!(w.select(u, 0), w);
    }

    #[test]
    fn splat_fills_every_lane() {
        for &v in Logic4::all() {
            let w = PackedLogic4::splat(v);
            for k in 0..LANES {
                assert_eq!(w.lane(k), v);
            }
        }
        for &v in Bit::all() {
            let w = PackedBit::splat(v);
            for k in 0..LANES {
                assert_eq!(w.lane(k), v);
            }
        }
    }
}
