//! `parsim-bitsim` — the bit-parallel compiled oblivious kernel.
//!
//! The paper's §II names *data parallelism* as one of the two parallelisms
//! in logic simulation: "the same operation on many data items", most
//! effective "for fault simulation, where a large number of independent
//! input vectors need to be simulated". This crate exploits it the classic
//! way — bit parallelism: [`LANES`] (64) independent simulation machines
//! packed into the bit positions of machine words, so one word-wide boolean
//! operation evaluates a gate for all 64 machines at once.
//!
//! The pieces:
//!
//! - [`PackedValue`] with two carriers: [`PackedBit`] (one `u64` plane, the
//!   two-valued fast path) and [`PackedLogic4`] (two planes packing the
//!   four-valued `Logic4`, with word-wide X/Z propagation).
//! - [`CompiledCircuit`]: the circuit levelized
//!   (`parsim_netlist::Levelization`) into a straight-line evaluation
//!   schedule, compiled once per run.
//! - [`BitSimulator`]: the §IV oblivious discipline over packed words —
//!   every gate evaluated every tick, double-buffered unit-delay
//!   semantics, optionally sharding each level across the `parsim-runtime`
//!   worker pool.
//! - [`PackedStimulus`] / [`PackedOutcome`]: transposing 64 scalar
//!   [`Stimulus`](parsim_core::Stimulus) streams into packed events and
//!   projecting per-lane scalar [`SimOutcome`](parsim_core::SimOutcome)s
//!   back out.
//! - [`simulate_faults_packed`]: the fault-campaign fast path — up to 64
//!   faulty machines per packed pass via per-lane stuck-value forcing.
//!
//! # Determinism contract
//!
//! Lane `k` of a packed run is **bit-identical** to a scalar run driven by
//! stimulus lane `k` alone — final values and waveforms, against both the
//! scalar kernels and the threaded packed kernel. The differential suite
//! (`tests/bitsim.rs`) holds the crate to this contract.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compile;
mod fault;
mod packed;
mod sim;
mod stimulus;

pub use compile::{CompiledCircuit, CompiledOp};
pub use fault::simulate_faults_packed;
pub use packed::{PackedBit, PackedLogic4, PackedValue, LANES};
pub use sim::{BitSimulator, PackedForce};
pub use stimulus::{PackedEvent, PackedOutcome, PackedStimulus, PackedWaveform};
