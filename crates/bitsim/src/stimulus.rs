//! Transposing scalar stimulus streams and waveforms into packed lanes.

use std::collections::BTreeMap;

use parsim_core::{SimOutcome, SimStats, Stimulus, Waveform};
use parsim_event::VirtualTime;
use parsim_netlist::{Circuit, GateId};

use crate::packed::{PackedValue, LANES};

/// A bundle of up to [`LANES`] independent scalar [`Stimulus`] streams,
/// one per lane.
///
/// The packed kernel simulates all lanes in one pass; lane `k` of the
/// result is bit-identical to a scalar run driven by `lane(k)` alone —
/// the transposition is what lets the differential harness compare one
/// packed run against 64 `SequentialSimulator` runs.
///
/// # Examples
///
/// ```
/// use parsim_bitsim::PackedStimulus;
/// use parsim_core::Stimulus;
///
/// let stim = PackedStimulus::new(
///     (0..64).map(|k| Stimulus::random(k, 10).with_clock(6)).collect(),
/// );
/// assert_eq!(stim.lanes(), 64);
/// ```
#[derive(Debug, Clone)]
pub struct PackedStimulus {
    lanes: Vec<Stimulus>,
}

impl PackedStimulus {
    /// Bundles the given per-lane stimuli.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ lanes.len() ≤ 64`.
    pub fn new(lanes: Vec<Stimulus>) -> Self {
        assert!(
            (1..=LANES).contains(&lanes.len()),
            "a packed stimulus carries 1..={LANES} lanes, got {}",
            lanes.len()
        );
        PackedStimulus { lanes }
    }

    /// Bundles 64 lanes of the same stimulus (the fault-campaign shape:
    /// identical vectors, per-lane fault injection).
    pub fn splat(stimulus: &Stimulus) -> Self {
        PackedStimulus { lanes: vec![stimulus.clone(); LANES] }
    }

    /// Number of populated lanes.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// The scalar stimulus of lane `k`.
    pub fn lane(&self, k: usize) -> &Stimulus {
        &self.lanes[k]
    }

    /// Transposes the per-lane scalar event streams into packed events:
    /// one [`PackedEvent`] per `(time, net)` carrying the lane mask and the
    /// per-lane values, sorted by `(time, net)` like every scalar kernel's
    /// input queue.
    pub fn events<P: PackedValue>(
        &self,
        circuit: &Circuit,
        until: VirtualTime,
    ) -> Vec<PackedEvent<P>> {
        let mut grouped: BTreeMap<(VirtualTime, usize), (u64, P)> = BTreeMap::new();
        for (k, stim) in self.lanes.iter().enumerate() {
            for e in stim.events::<P::Scalar>(circuit, until) {
                let entry = grouped.entry((e.time, e.net.index())).or_insert((0, P::ALL_ZERO));
                entry.0 |= 1 << k;
                entry.1.set_lane(k, e.value);
            }
        }
        grouped
            .into_iter()
            .map(|((time, net), (mask, value))| PackedEvent {
                time,
                net: GateId::new(net),
                mask,
                value,
            })
            .collect()
    }
}

/// A packed input event: at `time`, drive `net` in the lanes of `mask`
/// with the corresponding lanes of `value`.
#[derive(Debug, Clone, Copy)]
pub struct PackedEvent<P> {
    /// When the event applies.
    pub time: VirtualTime,
    /// The driven net.
    pub net: GateId,
    /// Which lanes carry an event (bit `k` = lane `k`).
    pub mask: u64,
    /// The driven values; lanes outside `mask` are ignored.
    pub value: P,
}

/// A packed waveform: the transition history of one net across all lanes.
///
/// Entries are appended whenever *any* lane changes; extracting a lane
/// re-runs the scalar [`Waveform`] recording rules, so
/// [`lane_waveform`](PackedWaveform::lane_waveform) reproduces the scalar
/// run's waveform exactly (same transitions, same coalescing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedWaveform<P> {
    transitions: Vec<(VirtualTime, P)>,
}

impl<P: PackedValue> PackedWaveform<P> {
    /// Creates a waveform with the given initial packed value at `t = 0`.
    pub fn new(initial: P) -> Self {
        PackedWaveform { transitions: vec![(VirtualTime::ZERO, initial)] }
    }

    /// Appends a packed transition, mirroring [`Waveform::record`]: a
    /// same-time record overwrites, an unchanged word is coalesced.
    pub fn record(&mut self, time: VirtualTime, value: P) {
        let last = self.transitions.last_mut().expect("waveform always has an initial entry");
        assert!(time >= last.0, "waveform transitions must be recorded in time order");
        if last.0 == time {
            last.1 = value;
        } else if last.1 != value {
            self.transitions.push((time, value));
        }
    }

    /// All packed transitions, in time order.
    pub fn transitions(&self) -> &[(VirtualTime, P)] {
        &self.transitions
    }

    /// The scalar waveform seen by lane `k`.
    pub fn lane_waveform(&self, k: usize) -> Waveform<P::Scalar> {
        let mut iter = self.transitions.iter();
        let &(_, first) = iter.next().expect("waveform always has an initial entry");
        let mut w = Waveform::new(first.lane(k));
        for &(t, v) in iter {
            w.record(t, v.lane(k));
        }
        w
    }

    /// The final packed value.
    pub fn final_value(&self) -> P {
        self.transitions.last().expect("waveform always has an initial entry").1
    }
}

/// The result of one packed run: final values, waveforms and stats for all
/// lanes at once.
#[derive(Debug, Clone)]
pub struct PackedOutcome<P> {
    /// Final packed value of every net (indexed by `GateId::index`).
    pub final_values: Vec<P>,
    /// Packed waveforms of the observed nets.
    pub waveforms: BTreeMap<GateId, PackedWaveform<P>>,
    /// The simulation horizon that was reached.
    pub end_time: VirtualTime,
    /// Aggregate counters. `gate_evaluations` counts packed *word*
    /// evaluations — multiply by [`lanes`](PackedOutcome::lanes) for the
    /// scalar-equivalent count; `events_processed` counts applied scalar
    /// events summed over lanes.
    pub stats: SimStats,
    /// Number of populated lanes.
    pub lanes: usize,
}

impl<P: PackedValue> PackedOutcome<P> {
    /// Projects lane `k` out as a scalar [`SimOutcome`], directly
    /// comparable (via `divergence_from`) with a scalar kernel's result.
    ///
    /// The projected outcome carries the packed run's aggregate stats —
    /// waveforms and final values are per-lane exact, counters are not
    /// per-lane quantities (and `divergence_from` ignores them).
    pub fn lane_outcome(&self, k: usize) -> SimOutcome<P::Scalar> {
        assert!(k < self.lanes, "lane {k} out of {} populated lanes", self.lanes);
        SimOutcome {
            final_values: self.final_values.iter().map(|&p| p.lane(k)).collect(),
            waveforms: self.waveforms.iter().map(|(&id, w)| (id, w.lane_waveform(k))).collect(),
            end_time: self.end_time,
            stats: self.stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packed::PackedBit;
    use parsim_logic::Bit;
    use parsim_netlist::bench;

    #[test]
    fn transposition_matches_scalar_event_streams() {
        let c = bench::c17();
        let until = VirtualTime::new(80);
        let stim = PackedStimulus::new((0..7).map(|k| Stimulus::random(k + 1, 9)).collect());
        let packed = stim.events::<PackedBit>(&c, until);
        // Sorted by (time, net), like the scalar kernels' input queues.
        for pair in packed.windows(2) {
            assert!((pair[0].time, pair[0].net.index()) < (pair[1].time, pair[1].net.index()));
        }
        for k in 0..stim.lanes() {
            let scalar = stim.lane(k).events::<Bit>(&c, until);
            let from_packed: Vec<(VirtualTime, usize, Bit)> = packed
                .iter()
                .filter(|e| e.mask >> k & 1 == 1)
                .map(|e| (e.time, e.net.index(), e.value.lane(k)))
                .collect();
            let want: Vec<(VirtualTime, usize, Bit)> =
                scalar.iter().map(|e| (e.time, e.net.index(), e.value)).collect();
            assert_eq!(from_packed, want, "lane {k}");
        }
    }

    #[test]
    fn lane_waveform_extraction_coalesces_like_scalar_recording() {
        let mut pw = PackedWaveform::new(PackedBit(0));
        // Lane 0 toggles at t=1 and t=3; lane 1 only at t=3; t=0 overwrite.
        pw.record(VirtualTime::ZERO, PackedBit(0b10));
        pw.record(VirtualTime::new(1), PackedBit(0b11));
        pw.record(VirtualTime::new(2), PackedBit(0b11));
        pw.record(VirtualTime::new(3), PackedBit(0b00));
        let w0 = pw.lane_waveform(0);
        let mut want0 = Waveform::new(Bit::Zero);
        want0.record(VirtualTime::new(1), Bit::One);
        want0.record(VirtualTime::new(3), Bit::Zero);
        assert_eq!(w0, want0);
        let w1 = pw.lane_waveform(1);
        let mut want1 = Waveform::new(Bit::One);
        want1.record(VirtualTime::new(3), Bit::Zero);
        assert_eq!(w1, want1);
    }

    #[test]
    #[should_panic(expected = "1..=64 lanes")]
    fn rejects_too_many_lanes() {
        let _ = PackedStimulus::new(vec![Stimulus::quiet(10); 65]);
    }
}
