//! The bit-parallel fault-campaign fast path.
//!
//! The paper's §II motivates bit parallelism with fault simulation: the
//! campaign runs the *same* vectors against many independent faulty
//! machines, which packs perfectly into lanes. Where
//! [`parsim_core::fault::simulate_faults`] builds and simulates one faulty
//! circuit per fault, this module simulates up to [`LANES`] faulty machines
//! per packed pass — lane `k` carries fault `k` of the chunk, injected by
//! holding the faulty net at its stuck value ([`PackedForce`]) instead of
//! rewiring the netlist. The two are observably equivalent, and
//! [`simulate_faults_packed`] returns the same [`FaultReport`] the serial
//! campaign does (asserted by the differential suite).

use std::collections::BTreeMap;

use parsim_core::fault::{FaultReport, StuckAtFault};
use parsim_core::{Observe, SequentialSimulator, Simulator, Stimulus};
use parsim_event::VirtualTime;
use parsim_logic::LogicValue;
use parsim_netlist::Circuit;

use crate::packed::{PackedValue, LANES};
use crate::sim::{BitSimulator, PackedForce};
use crate::stimulus::PackedStimulus;

/// Runs a stuck-at fault campaign with up to [`LANES`] faulty machines per
/// packed pass.
///
/// The good machine is simulated once by the scalar
/// [`SequentialSimulator`]; faults are then chunked 64 at a time, each chunk
/// simulated as one packed run of `sim` with every lane driven by the same
/// `stimulus` and lane `k` forcing fault `k`'s net to its stuck value. A
/// fault is *detected* if any primary-output waveform of its lane differs
/// from the good machine's — the same criterion (and the same report) as
/// the serial campaign.
///
/// # Panics
///
/// Panics if the circuit has non-unit gate delays (the bit-parallel
/// kernel's precondition).
pub fn simulate_faults_packed<P: PackedValue>(
    sim: &BitSimulator<P>,
    circuit: &Circuit,
    faults: &[StuckAtFault],
    stimulus: &Stimulus,
    until: VirtualTime,
) -> FaultReport {
    let good = SequentialSimulator::<P::Scalar>::new()
        .with_observe(Observe::Outputs)
        .run(circuit, stimulus, until);

    let mut detected = Vec::with_capacity(faults.len());
    for chunk in faults.chunks(LANES) {
        let lanes = chunk.len();
        let packed_stim = PackedStimulus::new(vec![stimulus.clone(); lanes]);
        let events = packed_stim.events::<P>(circuit, until);
        // One force per distinct faulty net, masks merged across the chunk.
        let mut merged: BTreeMap<usize, PackedForce<P>> = BTreeMap::new();
        for (k, fault) in chunk.iter().enumerate() {
            let f = merged.entry(fault.net.index()).or_insert(PackedForce {
                net: fault.net,
                mask: 0,
                value: P::ALL_ZERO,
            });
            f.mask |= 1 << k;
            f.value.set_lane(k, if fault.value { P::Scalar::ONE } else { P::Scalar::ZERO });
        }
        let forces: Vec<PackedForce<P>> = merged.into_values().collect();
        let out = sim.run_events_forced(circuit, events, lanes, until, &forces);
        for (k, &fault) in chunk.iter().enumerate() {
            let differs = circuit
                .outputs()
                .iter()
                .any(|po| out.waveforms[po].lane_waveform(k) != good.waveforms[po]);
            detected.push((fault, differs));
        }
    }
    FaultReport { detected }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packed::{PackedBit, PackedLogic4};
    use parsim_core::fault::{enumerate_faults, simulate_faults};
    use parsim_logic::{Bit, Logic4};
    use parsim_netlist::{bench, generate, DelayModel};

    #[test]
    fn packed_campaign_matches_serial_on_c17() {
        let c = bench::c17();
        let vectors: Vec<Vec<bool>> =
            (0u32..32).map(|p| (0..5).map(|i| p >> i & 1 == 1).collect()).collect();
        let stimulus = Stimulus::vectors(16, vectors);
        let faults = enumerate_faults(&c);
        let until = VirtualTime::new(32 * 16);
        let serial = simulate_faults::<Bit>(&c, &faults, &stimulus, until);
        let packed = simulate_faults_packed::<PackedBit>(
            &BitSimulator::new(),
            &c,
            &faults,
            &stimulus,
            until,
        );
        assert_eq!(packed, serial);
        assert_eq!(packed.coverage(), 1.0);
    }

    #[test]
    fn packed_campaign_matches_serial_on_partial_coverage() {
        let c = bench::c17();
        let stimulus = Stimulus::vectors(16, vec![vec![false; 5]]);
        let faults = enumerate_faults(&c);
        let until = VirtualTime::new(64);
        let serial = simulate_faults::<Logic4>(&c, &faults, &stimulus, until);
        let packed = simulate_faults_packed::<PackedLogic4>(
            &BitSimulator::new(),
            &c,
            &faults,
            &stimulus,
            until,
        );
        assert_eq!(packed, serial);
        assert!(packed.coverage() < 1.0);
    }

    #[test]
    fn packed_campaign_matches_serial_on_sequential_circuit() {
        let c = generate::counter(4, DelayModel::Unit);
        let faults = enumerate_faults(&c);
        let stimulus = Stimulus::quiet(100_000).with_clock(5);
        let until = VirtualTime::new(200);
        let serial = simulate_faults::<Bit>(&c, &faults, &stimulus, until);
        let packed = simulate_faults_packed::<PackedBit>(
            &BitSimulator::new(),
            &c,
            &faults,
            &stimulus,
            until,
        );
        assert_eq!(packed, serial);
    }

    #[test]
    fn chunking_covers_more_than_one_word_of_faults() {
        let c = generate::random_dag(&generate::RandomDagConfig {
            gates: 80,
            seq_fraction: 0.1,
            seed: 21,
            ..Default::default()
        });
        let faults = enumerate_faults(&c);
        assert!(faults.len() > LANES, "need a multi-chunk campaign");
        let stimulus = Stimulus::random(7, 6).with_clock(4);
        let until = VirtualTime::new(120);
        let serial = simulate_faults::<Bit>(&c, &faults, &stimulus, until);
        let packed = simulate_faults_packed::<PackedBit>(
            &BitSimulator::new(),
            &c,
            &faults,
            &stimulus,
            until,
        );
        assert_eq!(packed, serial);
    }
}
