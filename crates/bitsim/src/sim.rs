//! The bit-parallel compiled oblivious kernel.

use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, RwLock};

use parsim_core::{Observe, SimStats};
use parsim_event::VirtualTime;
use parsim_logic::{GateKind, LogicValue};
use parsim_netlist::{Circuit, GateId};
use parsim_runtime::{lock_recover, RoundBarrier};
use parsim_trace::{Probe, ProbeHandle, TraceKind, NO_LP};

use crate::compile::{CompiledCircuit, CompiledOp};
use crate::packed::{PackedValue, LANES};
use crate::stimulus::{PackedEvent, PackedOutcome, PackedStimulus, PackedWaveform};

/// The §IV oblivious algorithm, bit-parallel: 64 independent stimulus
/// patterns per machine word, one word-wide gate operation per gate per
/// tick.
///
/// The kernel compiles the circuit once into a levelized straight-line
/// schedule ([`CompiledCircuit`]) and then, like [`ObliviousSimulator`],
/// evaluates every gate at every tick with double buffering — tick `t`
/// values are a pure function of tick `t − 1` values, i.e. unit-delay
/// semantics. The packed operations are lane-exact, so **lane `k` of a
/// packed run is bit-identical to a scalar run driven by stimulus lane `k`
/// alone** (waveforms included); the differential suite compares packed
/// runs against 64 [`SequentialSimulator`] runs.
///
/// Wide schedules can optionally be sharded across threads
/// ([`with_threads`](BitSimulator::with_threads)): each level's ops are
/// chunked over the `parsim-runtime` worker pool, workers evaluate their
/// chunks against a frozen value snapshot, and worker 0 applies the
/// results in deterministic schedule order — the threaded run is
/// bit-identical to the single-threaded one.
///
/// [`ObliviousSimulator`]: parsim_core::ObliviousSimulator
/// [`SequentialSimulator`]: parsim_core::SequentialSimulator
///
/// # Panics
///
/// [`run`](BitSimulator::run) panics if any non-source gate has a delay
/// other than one tick (the oblivious precondition).
///
/// # Examples
///
/// ```
/// use parsim_bitsim::{BitSimulator, PackedBit, PackedStimulus};
/// use parsim_core::{Observe, SequentialSimulator, Simulator, Stimulus};
/// use parsim_event::VirtualTime;
/// use parsim_logic::Bit;
/// use parsim_netlist::bench;
///
/// let c = bench::c17();
/// let stim = PackedStimulus::new((0..64).map(|k| Stimulus::random(k + 1, 7)).collect());
/// let until = VirtualTime::new(120);
/// let packed = BitSimulator::<PackedBit>::new().with_observe(Observe::AllNets).run(
///     &c,
///     &stim,
///     until,
/// );
/// // Lane 17 ≡ the scalar run of stimulus 17.
/// let scalar = SequentialSimulator::<Bit>::new().with_observe(Observe::AllNets).run(
///     &c,
///     stim.lane(17),
///     until,
/// );
/// assert_eq!(packed.lane_outcome(17).divergence_from(&scalar), None);
/// ```
#[derive(Debug, Clone)]
pub struct BitSimulator<P> {
    observe: Observe,
    probe: Probe,
    threads: usize,
    _values: PhantomData<P>,
}

impl<P: PackedValue> BitSimulator<P> {
    /// Creates the kernel (single-threaded, observing primary outputs).
    pub fn new() -> Self {
        BitSimulator {
            observe: Observe::Outputs,
            probe: Probe::disabled(),
            threads: 1,
            _values: PhantomData,
        }
    }

    /// Selects which nets to record waveforms for.
    pub fn with_observe(mut self, observe: Observe) -> Self {
        self.observe = observe;
        self
    }

    /// Attaches a trace probe. The kernel records one batched `GateEval`
    /// per tick (`arg` = packed word evaluations), a `Dequeue` per applied
    /// packed input event, and — per tick, per level, per worker — a
    /// `Charge` span (`lp` = level index, `arg` = span nanoseconds) for
    /// the level's evaluation work.
    pub fn with_probe(mut self, probe: Probe) -> Self {
        self.probe = probe;
        self
    }

    /// Shards each level's ops across `threads` workers on the
    /// `parsim-runtime` pool. `1` (the default) evaluates inline. The
    /// result is bit-identical either way.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "thread count must be at least 1");
        self.threads = threads;
        self
    }

    /// The kernel's display name.
    pub fn name(&self) -> String {
        if self.threads > 1 {
            format!("bitsim[{}x{}]", LANES, self.threads)
        } else {
            format!("bitsim[{LANES}]")
        }
    }

    /// Runs all lanes of `stimulus` to `until` (inclusive of events stamped
    /// exactly `until`) in one packed pass.
    pub fn run(
        &self,
        circuit: &Circuit,
        stimulus: &PackedStimulus,
        until: VirtualTime,
    ) -> PackedOutcome<P> {
        let lanes = stimulus.lanes();
        let mut events = stimulus.events::<P>(circuit, until);
        // Constants behave like a t = 0 input event, on every lane.
        for (id, g) in circuit.iter() {
            if g.kind() == GateKind::Const1 {
                events.push(PackedEvent {
                    time: VirtualTime::ZERO,
                    net: id,
                    mask: lanes_mask(lanes),
                    value: P::splat(P::Scalar::ONE),
                });
            }
        }
        self.run_events(circuit, events, lanes, until)
    }

    /// Runs a pre-transposed packed event stream — the lower-level entry
    /// used by the fault campaign and by tests that seed non-boolean
    /// initial lanes (e.g. `X` on a subset of lanes at `t = 0`). Events
    /// are (stably) sorted by `(time, net)` before the run, the order every
    /// scalar kernel applies input events in.
    pub fn run_events(
        &self,
        circuit: &Circuit,
        events: Vec<PackedEvent<P>>,
        lanes: usize,
        until: VirtualTime,
    ) -> PackedOutcome<P> {
        self.run_events_forced(circuit, events, lanes, until, &[])
    }

    /// [`run_events`](BitSimulator::run_events) with per-lane stuck value
    /// forcing: after every apply phase, each [`PackedForce`]'s net is
    /// overridden in the forced lanes, so downstream gates only ever see
    /// the stuck value — lane `k` behaves like the circuit with fault `k`
    /// injected. This is the fault campaign's entry point: up to 64 faulty
    /// machines per packed pass.
    pub fn run_events_forced(
        &self,
        circuit: &Circuit,
        mut events: Vec<PackedEvent<P>>,
        lanes: usize,
        until: VirtualTime,
        forces: &[PackedForce<P>],
    ) -> PackedOutcome<P> {
        assert!((1..=LANES).contains(&lanes), "1..={LANES} lanes required, got {lanes}");
        events.sort_by_key(|e| (e.time, e.net.index()));
        let cc = CompiledCircuit::compile(circuit);
        let waveforms: BTreeMap<GateId, PackedWaveform<P>> = circuit
            .ids()
            .filter(|&id| self.observe.wants(circuit, id))
            .map(|id| (id, PackedWaveform::new(P::ALL_ZERO)))
            .collect();
        let run = if self.threads > 1 {
            self.run_sharded(cc, events, forces.to_vec(), waveforms, until)
        } else {
            self.run_inline(&cc, &events, forces, waveforms, until)
        };
        let (final_values, waveforms, stats) = run;
        PackedOutcome { final_values, waveforms, end_time: until, stats, lanes }
    }

    /// The single-threaded hot loop.
    fn run_inline(
        &self,
        cc: &CompiledCircuit,
        events: &[PackedEvent<P>],
        forces: &[PackedForce<P>],
        mut waveforms: BTreeMap<GateId, PackedWaveform<P>>,
        until: VirtualTime,
    ) -> (Vec<P>, BTreeMap<GateId, PackedWaveform<P>>, SimStats) {
        let n = cc.nets();
        let mut values = vec![P::ALL_ZERO; n];
        // `pending[g]` is the output computed at the previous tick, applied
        // this tick (unit delay). Seeding it with the initial values makes
        // the very first application a no-op, like the scalar kernel.
        let mut pending = vec![P::ALL_ZERO; n];
        let mut seq_prev = vec![P::ALL_ZERO; cc.seq_ops()];
        let mut seq_q = vec![P::ALL_ZERO; cc.seq_ops()];
        let mut stats = SimStats::default();
        let mut ph = self.probe.handle();
        let mut next_input = 0usize;

        let mut t = 0u64;
        loop {
            let now = VirtualTime::new(t);
            for op in cc.ops() {
                let i = op.gate.index();
                let v = pending[i];
                if v != values[i] {
                    values[i] = v;
                    if let Some(w) = waveforms.get_mut(&op.gate) {
                        w.record(now, v);
                    }
                }
            }
            apply_inputs(
                events,
                &mut next_input,
                now,
                &mut values,
                &mut waveforms,
                &mut stats,
                &mut ph,
            );
            apply_forces(forces, now, &mut values, &mut waveforms);
            if now >= until {
                break;
            }
            for (level, range) in cc.levels().iter().enumerate() {
                let span_start = if ph.enabled() { ph.now_ns() } else { 0 };
                for op in &cc.ops()[range.clone()] {
                    pending[op.gate.index()] = eval_op(cc, op, &values, &mut seq_prev, &mut seq_q);
                }
                if ph.enabled() {
                    let dur = ph.now_ns() - span_start;
                    ph.emit(span_start, t, 0, level as u32, TraceKind::Charge, dur);
                }
            }
            stats.gate_evaluations += cc.ops().len() as u64;
            if ph.enabled() {
                ph.emit(t, t, 0, NO_LP, TraceKind::GateEval, cc.ops().len() as u64);
            }
            t += 1;
        }
        (values, waveforms, stats)
    }

    /// The level-sharded loop: `threads` workers on the **persistent**
    /// runtime pool ([`parsim_runtime::global_pool`]) evaluate disjoint
    /// chunks of every level against a frozen snapshot of the tick's
    /// values; worker 0 applies all results in schedule order, so the
    /// outcome is bit-identical to [`run_inline`]. Repeated sharded runs
    /// (a bench sweep, a fault campaign) reuse the pool's threads instead
    /// of spawning a fresh set per run.
    fn run_sharded(
        &self,
        cc: CompiledCircuit,
        events: Vec<PackedEvent<P>>,
        forces: Vec<PackedForce<P>>,
        waveforms: BTreeMap<GateId, PackedWaveform<P>>,
        until: VirtualTime,
    ) -> (Vec<P>, BTreeMap<GateId, PackedWaveform<P>>, SimStats) {
        let workers = self.threads;
        let n = cc.nets();
        // Chunk every level contiguously across the workers.
        let mut chunks: Vec<Vec<(usize, std::ops::Range<usize>)>> = vec![Vec::new(); workers];
        for (level, range) in cc.levels().iter().enumerate() {
            let len = range.len();
            for (w, chunk) in chunks.iter_mut().enumerate() {
                let lo = range.start + len * w / workers;
                let hi = range.start + len * (w + 1) / workers;
                if lo < hi {
                    chunk.push((level, lo..hi));
                }
            }
        }
        let owner_of: Vec<usize> = {
            let mut owner = vec![0usize; cc.ops().len()];
            for (w, chunk) in chunks.iter().enumerate() {
                for (_, r) in chunk {
                    for slot in &mut owner[r.clone()] {
                        *slot = w;
                    }
                }
            }
            owner
        };

        // Each worker owns a full-width pending buffer plus the sequential
        // state of its ops (globally indexed; only owned slots are used).
        struct Shard<P> {
            pending: Vec<P>,
            seq_prev: Vec<P>,
            seq_q: Vec<P>,
        }
        // Worker 0 owns the apply phase: waveforms, input cursor, stats.
        struct ApplyState<P> {
            waveforms: BTreeMap<GateId, PackedWaveform<P>>,
            next_input: usize,
            stats: SimStats,
        }
        // Everything the workers touch, owned (`'static`) and shared via
        // `Arc` — persistent pool threads outlive this call's borrows.
        struct Shared<P: PackedValue> {
            cc: CompiledCircuit,
            events: Vec<PackedEvent<P>>,
            forces: Vec<PackedForce<P>>,
            chunks: Vec<Vec<(usize, std::ops::Range<usize>)>>,
            owner_of: Vec<usize>,
            values: RwLock<Vec<P>>,
            shards: Vec<Mutex<Shard<P>>>,
            apply: Mutex<Option<ApplyState<P>>>,
            barrier: RoundBarrier,
            stop: AtomicBool,
            until: VirtualTime,
            probe: Probe,
        }
        let shards: Vec<Mutex<Shard<P>>> = (0..workers)
            .map(|_| {
                Mutex::new(Shard {
                    pending: vec![P::ALL_ZERO; n],
                    seq_prev: vec![P::ALL_ZERO; cc.seq_ops()],
                    seq_q: vec![P::ALL_ZERO; cc.seq_ops()],
                })
            })
            .collect();
        let shared = std::sync::Arc::new(Shared {
            cc,
            events,
            forces,
            chunks,
            owner_of,
            values: RwLock::new(vec![P::ALL_ZERO; n]),
            shards,
            apply: Mutex::new(Some(ApplyState {
                waveforms,
                next_input: 0,
                stats: SimStats::default(),
            })),
            barrier: RoundBarrier::new(workers),
            stop: AtomicBool::new(false),
            until,
            probe: self.probe.clone(),
        });

        // A worker that unwinds mid-round would leave its peers blocked on
        // the round barrier forever; abort the barrier on the way out so
        // they fail fast (and the original panic propagates) instead.
        struct AbortOnUnwind<'a>(&'a RoundBarrier);
        impl Drop for AbortOnUnwind<'_> {
            fn drop(&mut self) {
                if std::thread::panicking() {
                    self.0.abort();
                }
            }
        }

        let worker_shared = std::sync::Arc::clone(&shared);
        let mut results = parsim_runtime::global_pool().run_static(workers, move |w| {
            let sh = &*worker_shared;
            let _abort_guard = AbortOnUnwind(&sh.barrier);
            let mut ph = sh.probe.handle();
            let mut state = if w == 0 {
                Some(lock_recover(&sh.apply).take().expect("apply state"))
            } else {
                None
            };
            let mut evals = 0u64;
            let mut t = 0u64;
            loop {
                // Round phase 1 — apply: worker 0 folds every worker's
                // pending buffer into the shared values, in schedule order.
                if w == 0 {
                    let st = state.as_mut().expect("worker 0 owns the apply state");
                    let mut vals = sh.values.write().expect("values lock");
                    let now = VirtualTime::new(t);
                    {
                        let shards: Vec<_> = sh.shards.iter().map(lock_recover).collect();
                        for (i, op) in sh.cc.ops().iter().enumerate() {
                            let g = op.gate.index();
                            let v = shards[sh.owner_of[i]].pending[g];
                            if v != vals[g] {
                                vals[g] = v;
                                if let Some(wave) = st.waveforms.get_mut(&op.gate) {
                                    wave.record(now, v);
                                }
                            }
                        }
                    }
                    apply_inputs(
                        &sh.events,
                        &mut st.next_input,
                        now,
                        &mut vals,
                        &mut st.waveforms,
                        &mut st.stats,
                        &mut ph,
                    );
                    apply_forces(&sh.forces, now, &mut vals, &mut st.waveforms);
                    if now >= sh.until {
                        sh.stop.store(true, Ordering::Release);
                    }
                }
                // Round phase 2 — everyone sees the applied values.
                ph.barrier_span(w as u32, t, || sh.barrier.wait(None))
                    .expect("barrier aborted: a peer worker failed");
                if sh.stop.load(Ordering::Acquire) {
                    break;
                }
                {
                    let vals = sh.values.read().expect("values lock");
                    let mut shard = lock_recover(&sh.shards[w]);
                    let shard = &mut *shard;
                    for (level, range) in &sh.chunks[w] {
                        let span_start = if ph.enabled() { ph.now_ns() } else { 0 };
                        for op in &sh.cc.ops()[range.clone()] {
                            shard.pending[op.gate.index()] =
                                eval_op(&sh.cc, op, &vals, &mut shard.seq_prev, &mut shard.seq_q);
                        }
                        evals += range.len() as u64;
                        if ph.enabled() {
                            let dur = ph.now_ns() - span_start;
                            ph.emit(span_start, t, w as u32, *level as u32, TraceKind::Charge, dur);
                        }
                    }
                }
                // Round phase 3 — eval done, shard locks released.
                ph.barrier_span(w as u32, t, || sh.barrier.wait(None))
                    .expect("barrier aborted: a peer worker failed");
                t += 1;
            }
            (state, evals)
        });

        let mut st = results
            .iter_mut()
            .find_map(|(s, _)| s.take())
            .expect("worker 0 returns the apply state");
        st.stats.gate_evaluations += results.iter().map(|&(_, e)| e).sum::<u64>();
        st.stats.barriers = until.ticks() + 1;
        let values = shared.values.read().expect("values lock").clone();
        (values, st.waveforms, st.stats)
    }
}

impl<P: PackedValue> Default for BitSimulator<P> {
    fn default() -> Self {
        Self::new()
    }
}

/// A per-lane stuck value: `net` is held at the corresponding lanes of
/// `value` in every lane of `mask`, overriding whatever its driver (or an
/// input event) produced. Lanes outside `mask` are untouched.
///
/// Forcing a net is observably equivalent to `parsim_core::fault::inject`'s
/// circuit rewiring: readers only ever see the stuck value, and the net's
/// own waveform matches the injected constant's.
#[derive(Debug, Clone, Copy)]
pub struct PackedForce<P> {
    /// The forced net.
    pub net: GateId,
    /// Which lanes are forced (bit `k` = lane `k`).
    pub mask: u64,
    /// The stuck values; lanes outside `mask` are ignored.
    pub value: P,
}

/// Overrides the forced nets after an apply phase, recording waveform
/// transitions like any other value change.
fn apply_forces<P: PackedValue>(
    forces: &[PackedForce<P>],
    now: VirtualTime,
    values: &mut [P],
    waveforms: &mut BTreeMap<GateId, PackedWaveform<P>>,
) {
    for f in forces {
        let i = f.net.index();
        let forced = values[i].select(f.value, f.mask);
        if forced != values[i] {
            values[i] = forced;
            if let Some(w) = waveforms.get_mut(&f.net) {
                w.record(now, forced);
            }
        }
    }
}

/// All populated lanes as a mask.
fn lanes_mask(lanes: usize) -> u64 {
    if lanes >= LANES {
        u64::MAX
    } else {
        (1u64 << lanes) - 1
    }
}

/// Applies the packed input events stamped `now`, recording waveforms and
/// stats like the scalar oblivious kernel does.
fn apply_inputs<P: PackedValue>(
    events: &[PackedEvent<P>],
    next_input: &mut usize,
    now: VirtualTime,
    values: &mut [P],
    waveforms: &mut BTreeMap<GateId, PackedWaveform<P>>,
    stats: &mut SimStats,
    ph: &mut ProbeHandle,
) {
    while *next_input < events.len() && events[*next_input].time == now {
        let e = events[*next_input];
        *next_input += 1;
        stats.events_processed += u64::from(e.mask.count_ones());
        if ph.enabled() {
            let remaining = (events.len() - *next_input) as u64;
            ph.emit(
                now.ticks(),
                now.ticks(),
                0,
                e.net.index() as u32,
                TraceKind::Dequeue,
                remaining,
            );
        }
        let i = e.net.index();
        let merged = values[i].select(e.value, e.mask);
        if merged != values[i] {
            values[i] = merged;
            if let Some(w) = waveforms.get_mut(&e.net) {
                w.record(now, merged);
            }
        }
    }
}

/// Evaluates one compiled op against the tick's frozen values.
fn eval_op<P: PackedValue>(
    cc: &CompiledCircuit,
    op: &CompiledOp,
    values: &[P],
    seq_prev: &mut [P],
    seq_q: &mut [P],
) -> P {
    let fanin = cc.fanin(op);
    let read = |k: usize| values[fanin[k].index()];
    match op.kind {
        GateKind::Buf => read(0),
        GateKind::Not => read(0).not(),
        GateKind::And => fold(values, fanin, P::splat(P::Scalar::ONE), P::and),
        GateKind::Nand => fold(values, fanin, P::splat(P::Scalar::ONE), P::and).not(),
        GateKind::Or => fold(values, fanin, P::splat(P::Scalar::ZERO), P::or),
        GateKind::Nor => fold(values, fanin, P::splat(P::Scalar::ZERO), P::or).not(),
        // Xor reduces without an initial element, like the scalar kernel.
        GateKind::Xor => fanin
            .iter()
            .map(|&f| values[f.index()])
            .reduce(P::xor)
            .unwrap_or(P::splat(P::Scalar::ZERO)),
        GateKind::Xnor => fanin
            .iter()
            .map(|&f| values[f.index()])
            .reduce(P::xor)
            .unwrap_or(P::splat(P::Scalar::ZERO))
            .not(),
        GateKind::Mux2 => P::mux(read(0), read(1), read(2)),
        GateKind::Tribuf => P::tribuf(read(0), read(1)),
        GateKind::Bus => fold(values, fanin, P::splat(P::Scalar::HIGH_Z), P::resolve),
        GateKind::Dff => {
            let s = op.seq_slot as usize;
            let clk = read(0);
            let q = P::dff(seq_prev[s], clk, read(1), seq_q[s]);
            seq_prev[s] = clk;
            seq_q[s] = q;
            q
        }
        GateKind::Latch => {
            let s = op.seq_slot as usize;
            let en = read(0);
            let q = P::latch(en, read(1), seq_q[s]);
            seq_prev[s] = en;
            seq_q[s] = q;
            q
        }
        GateKind::Input | GateKind::Const0 | GateKind::Const1 => {
            unreachable!("sources are never scheduled")
        }
    }
}

#[inline]
fn fold<P: PackedValue>(values: &[P], fanin: &[GateId], init: P, f: fn(P, P) -> P) -> P {
    fanin.iter().fold(init, |acc, &g| f(acc, values[g.index()]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packed::{PackedBit, PackedLogic4};
    use parsim_core::{SequentialSimulator, Simulator, Stimulus};
    use parsim_logic::Logic4;
    use parsim_netlist::{bench, generate, DelayModel};

    fn differential<P: PackedValue>(circuit: &Circuit, stim: &PackedStimulus, until: u64) {
        let until = VirtualTime::new(until);
        let packed =
            BitSimulator::<P>::new().with_observe(Observe::AllNets).run(circuit, stim, until);
        for k in 0..stim.lanes() {
            let scalar = SequentialSimulator::<P::Scalar>::new()
                .with_observe(Observe::AllNets)
                .run(circuit, stim.lane(k), until);
            if let Some(d) = packed.lane_outcome(k).divergence_from(&scalar) {
                panic!("lane {k} diverged on {}: {d}", circuit.name());
            }
        }
    }

    #[test]
    fn lanes_match_scalar_runs_on_c17() {
        let stim =
            PackedStimulus::new((0..LANES as u64).map(|k| Stimulus::random(k + 1, 7)).collect());
        differential::<PackedBit>(&bench::c17(), &stim, 120);
        differential::<PackedLogic4>(&bench::c17(), &stim, 120);
    }

    #[test]
    fn lanes_match_scalar_runs_on_sequential_circuits() {
        let c = generate::lfsr(6, DelayModel::Unit);
        let stim = PackedStimulus::new(
            (0..16u64).map(|k| Stimulus::quiet(60 + k).with_clock(4)).collect(),
        );
        differential::<PackedBit>(&c, &stim, 180);
        differential::<PackedLogic4>(&c, &stim, 180);
    }

    #[test]
    fn threaded_run_is_bit_identical() {
        let c = generate::random_dag(&generate::RandomDagConfig {
            gates: 220,
            seq_fraction: 0.15,
            seed: 3,
            ..Default::default()
        });
        let stim = PackedStimulus::new(
            (0..LANES as u64).map(|k| Stimulus::random(k + 3, 8).with_clock(5)).collect(),
        );
        let until = VirtualTime::new(150);
        let one = BitSimulator::<PackedLogic4>::new()
            .with_observe(Observe::AllNets)
            .run(&c, &stim, until);
        for threads in [2, 4] {
            let sharded = BitSimulator::<PackedLogic4>::new()
                .with_observe(Observe::AllNets)
                .with_threads(threads)
                .run(&c, &stim, until);
            assert_eq!(sharded.final_values, one.final_values, "{threads} threads");
            assert_eq!(sharded.waveforms, one.waveforms, "{threads} threads");
        }
    }

    #[test]
    fn probe_does_not_perturb_results() {
        let c = bench::s27ish();
        let stim = PackedStimulus::new(
            (0..8u64).map(|k| Stimulus::random(k + 9, 6).with_clock(4)).collect(),
        );
        let until = VirtualTime::new(100);
        let plain = BitSimulator::<PackedLogic4>::new()
            .with_observe(Observe::AllNets)
            .run(&c, &stim, until);
        let probe = Probe::enabled();
        let probed = BitSimulator::<PackedLogic4>::new()
            .with_observe(Observe::AllNets)
            .with_probe(probe.clone())
            .run(&c, &stim, until);
        assert_eq!(plain.final_values, probed.final_values);
        assert_eq!(plain.waveforms, probed.waveforms);
        let trace = probe.take_trace();
        assert!(trace.records().iter().any(|r| r.kind == TraceKind::GateEval));
        assert!(trace.records().iter().any(|r| r.kind == TraceKind::Charge));
    }

    #[test]
    fn x_seeded_lanes_propagate_without_touching_boolean_lanes() {
        // Seed X at t = 0 on one primary input for the upper half of the
        // lanes. The boolean lanes must stay bit-identical to scalar runs;
        // the seeded lanes must show the X actually propagating.
        let c = bench::c17();
        let lanes = 16usize;
        let x_mask: u64 = 0xFF00; // lanes 8..16
        let stim =
            PackedStimulus::new((0..lanes as u64).map(|k| Stimulus::random(k + 5, 11)).collect());
        let until = VirtualTime::new(90);
        let mut events = stim.events::<PackedLogic4>(&c, until);
        let seeded = c.inputs()[0];
        let mut value = PackedLogic4::ALL_ZERO;
        for k in 8..lanes {
            value.set_lane(k, Logic4::X);
        }
        events.push(PackedEvent { time: VirtualTime::ZERO, net: seeded, mask: x_mask, value });
        let packed = BitSimulator::<PackedLogic4>::new()
            .with_observe(Observe::AllNets)
            .run_events(&c, events, lanes, until);
        for k in 0..8 {
            let scalar = SequentialSimulator::<Logic4>::new().with_observe(Observe::AllNets).run(
                &c,
                stim.lane(k),
                until,
            );
            assert_eq!(packed.lane_outcome(k).divergence_from(&scalar), None, "lane {k}");
        }
        let x_reached_somewhere = (8..lanes).any(|k| {
            c.ids().any(|id| {
                packed.waveforms[&id]
                    .lane_waveform(k)
                    .transitions()
                    .iter()
                    .any(|&(_, v)| v.is_unknown())
            })
        });
        assert!(x_reached_somewhere, "seeded X never propagated");
    }

    #[test]
    fn evaluation_count_is_words_times_ticks() {
        let c = bench::c17(); // 6 evaluating gates
        let stim = PackedStimulus::new(vec![Stimulus::random_with_toggle(1, 10, 0.0); 64]);
        let out = BitSimulator::<PackedBit>::new().run(&c, &stim, VirtualTime::new(100));
        assert_eq!(out.stats.gate_evaluations, 6 * 100);
        assert_eq!(out.lanes, 64);
    }

    #[test]
    #[should_panic(expected = "unit gate delays")]
    fn rejects_non_unit_delays() {
        let c = generate::ripple_adder(2, DelayModel::PerKind);
        let stim = PackedStimulus::new(vec![Stimulus::random(1, 5)]);
        BitSimulator::<PackedBit>::new().run(&c, &stim, VirtualTime::new(50));
    }
}
