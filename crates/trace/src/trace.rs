//! The merged, time-sorted record of one instrumented run.

use crate::{TraceKind, TraceRecord};

/// Everything one probe recorded, merged across threads and sorted by
/// timeline position (see [`TraceRecord::key`]).
///
/// Analyses ([`crate::analysis`]), exporters ([`crate::to_perfetto_json`],
/// [`crate::to_csv`]) and the run report all consume this type.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    records: Vec<TraceRecord>,
    dropped: u64,
}

impl Trace {
    /// Builds a trace from already-sorted records plus an overflow count.
    pub(crate) fn new(records: Vec<TraceRecord>, dropped: u64) -> Self {
        debug_assert!(records.windows(2).all(|w| w[0].key() <= w[1].key()));
        Trace { records, dropped }
    }

    /// The records, sorted by `(t, processor, lp)`.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Records lost to ring overflow across all threads.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Returns `true` when nothing was recorded (and nothing dropped).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty() && self.dropped == 0
    }

    /// Records of one kind, in timeline order.
    pub fn of_kind(&self, kind: TraceKind) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter().filter(move |r| r.kind == kind)
    }

    /// Number of records of one kind.
    pub fn count(&self, kind: TraceKind) -> u64 {
        self.of_kind(kind).count() as u64
    }

    /// Sum of `arg` over records of one kind (e.g. total evaluations for
    /// batched [`TraceKind::GateEval`] records, total cost for
    /// [`TraceKind::Charge`]).
    pub fn sum_arg(&self, kind: TraceKind) -> u64 {
        self.of_kind(kind).fold(0u64, |acc, r| acc.saturating_add(r.arg))
    }

    /// One past the largest processor index seen (0 for an empty trace).
    pub fn processors(&self) -> usize {
        self.records.iter().map(|r| r.processor as usize + 1).max().unwrap_or(0)
    }

    /// The timeline extent `[start, end)` covered by the records, including
    /// span ends. `None` for an empty trace.
    pub fn extent(&self) -> Option<(u64, u64)> {
        if self.records.is_empty() {
            return None;
        }
        let start = self.records.first().expect("nonempty").t;
        let end = self.records.iter().map(TraceRecord::end).max().expect("nonempty");
        Some((start, end.max(start + 1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Probe;

    fn sample() -> Trace {
        let probe = Probe::enabled();
        let mut h = probe.handle();
        h.emit(0, 0, 0, 0, TraceKind::GateEval, 2);
        h.emit(4, 1, 1, 0, TraceKind::Charge, 10);
        h.emit(6, 2, 0, 1, TraceKind::GateEval, 3);
        drop(h);
        probe.take_trace()
    }

    #[test]
    fn counting_and_sums() {
        let t = sample();
        assert_eq!(t.count(TraceKind::GateEval), 2);
        assert_eq!(t.sum_arg(TraceKind::GateEval), 5);
        assert_eq!(t.processors(), 2);
        assert_eq!(t.extent(), Some((0, 14))); // charge span ends at 4 + 10
        assert!(!t.is_empty());
    }

    #[test]
    fn empty_trace() {
        let t = Trace::default();
        assert!(t.is_empty());
        assert_eq!(t.extent(), None);
        assert_eq!(t.processors(), 0);
    }
}
