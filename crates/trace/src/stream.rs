//! Chunked streaming export: incremental framing for line-oriented
//! waveform/trace text.
//!
//! The simulation service streams results while a job is still running, so
//! an exporter cannot hand the client one finished document — it emits a
//! sequence of [`ChunkFrame`]s, each carrying a bounded run of complete
//! text lines plus enough framing metadata (sequence number, line count,
//! checksum, end-of-stream flag) for the receiver to detect loss,
//! reordering, corruption and truncation without trusting the transport.
//! A budget-truncated job simply finishes its stream early: every frame
//! already delivered remains valid, and the `last` frame marks the clean
//! (if short) end — there is no torn final chunk, because a line enters a
//! frame only once it is complete.
//!
//! The framing is deliberately transport- and content-agnostic: payloads
//! are opaque text lines (waveform CSV, VCD, report rows), and frames
//! serialize however the caller wants (the server uses JSON). That keeps
//! this crate free of any dependency on the content producers above it.
//!
//! ```
//! use parsim_trace::stream::{reassemble, ChunkWriter};
//!
//! let mut frames = Vec::new();
//! let mut w = ChunkWriter::new(64, |f| frames.push(f));
//! for i in 0..100 {
//!     w.push_line(&format!("g{i},0,1"));
//! }
//! w.finish();
//! assert!(frames.len() > 1, "64-byte chunks force multiple frames");
//! assert!(frames.last().unwrap().last);
//! let text = reassemble(&frames).unwrap();
//! assert_eq!(text.lines().count(), 100);
//! ```

use std::fmt;

/// Default chunk payload target in bytes. Small enough that a slow
/// consumer sees progress early; large enough that framing overhead is
/// negligible.
pub const DEFAULT_CHUNK_BYTES: usize = 16 * 1024;

/// One frame of a chunked stream: a run of complete text lines plus the
/// framing metadata the receiver validates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkFrame {
    /// Position in the stream, starting at 0, gapless.
    pub seq: u64,
    /// Number of complete lines in `payload`.
    pub records: u64,
    /// FNV-1a hash of `payload`'s bytes.
    pub checksum: u64,
    /// True exactly on the stream's final frame.
    pub last: bool,
    /// The lines themselves, each terminated by `\n` (empty only on a
    /// `last` frame closing an empty tail).
    pub payload: String,
}

/// FNV-1a over `bytes`: the frame checksum. Not cryptographic — it guards
/// against transport truncation and corruption, not an adversary.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Incremental producer side: feed complete lines, frames come out of the
/// sink whenever the payload target is reached, and [`ChunkWriter::finish`]
/// always emits a terminal `last` frame (possibly empty) so the receiver
/// can distinguish a finished stream from a severed one.
pub struct ChunkWriter<F: FnMut(ChunkFrame)> {
    max_bytes: usize,
    seq: u64,
    records: u64,
    buf: String,
    sink: F,
    finished: bool,
}

impl<F: FnMut(ChunkFrame)> fmt::Debug for ChunkWriter<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChunkWriter")
            .field("max_bytes", &self.max_bytes)
            .field("seq", &self.seq)
            .field("buffered_records", &self.records)
            .field("finished", &self.finished)
            .finish_non_exhaustive()
    }
}

impl<F: FnMut(ChunkFrame)> ChunkWriter<F> {
    /// A writer that emits a frame into `sink` whenever the buffered
    /// payload reaches `max_bytes` (and a final one on `finish`).
    ///
    /// # Panics
    ///
    /// Panics if `max_bytes` is zero.
    pub fn new(max_bytes: usize, sink: F) -> Self {
        assert!(max_bytes >= 1, "chunk payload target must be at least one byte");
        ChunkWriter { max_bytes, seq: 0, records: 0, buf: String::new(), sink, finished: false }
    }

    /// Appends one complete line (the `\n` terminator is added here;
    /// `line` must not contain one — frames carry whole lines only,
    /// which is what makes an early stream end clean rather than torn).
    ///
    /// # Panics
    ///
    /// Panics if `line` contains a newline or the writer is finished.
    pub fn push_line(&mut self, line: &str) {
        assert!(!self.finished, "push_line after finish");
        assert!(!line.contains('\n'), "chunk lines must be newline-free");
        self.buf.push_str(line);
        self.buf.push('\n');
        self.records += 1;
        if self.buf.len() >= self.max_bytes {
            self.emit(false);
        }
    }

    /// Flushes whatever is buffered as a non-final frame, even below the
    /// payload target — the server calls this at job-progress boundaries
    /// so a slow simulation still streams.
    pub fn flush(&mut self) {
        assert!(!self.finished, "flush after finish");
        if self.records > 0 {
            self.emit(false);
        }
    }

    /// Ends the stream: emits the terminal `last` frame (always, even with
    /// nothing buffered) and consumes the writer.
    pub fn finish(mut self) {
        self.finished = true;
        self.emit(true);
    }

    /// Frames emitted so far (not counting buffered lines).
    pub fn frames_emitted(&self) -> u64 {
        self.seq
    }

    fn emit(&mut self, last: bool) {
        let payload = std::mem::take(&mut self.buf);
        let frame = ChunkFrame {
            seq: self.seq,
            records: self.records,
            checksum: fnv1a(payload.as_bytes()),
            last,
            payload,
        };
        self.seq += 1;
        self.records = 0;
        (self.sink)(frame);
    }
}

/// Why a frame sequence failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// A frame's `seq` broke the gapless 0,1,2,… order.
    SequenceGap {
        /// The sequence number expected at this position.
        expected: u64,
        /// The sequence number actually found.
        found: u64,
    },
    /// A frame's payload hashed differently than its `checksum` claims.
    ChecksumMismatch {
        /// The offending frame's sequence number.
        seq: u64,
    },
    /// A frame's `records` does not match its payload's line count.
    RecordCountMismatch {
        /// The offending frame's sequence number.
        seq: u64,
    },
    /// A non-final frame was flagged `last`, or the final frame was not.
    MisplacedLast {
        /// The offending frame's sequence number.
        seq: u64,
    },
    /// The sequence is empty or its final frame is not flagged `last`:
    /// the stream was severed mid-flight.
    Unterminated,
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::SequenceGap { expected, found } => {
                write!(f, "chunk sequence gap: expected {expected}, found {found}")
            }
            StreamError::ChecksumMismatch { seq } => {
                write!(f, "chunk {seq}: payload checksum mismatch")
            }
            StreamError::RecordCountMismatch { seq } => {
                write!(f, "chunk {seq}: record count does not match payload lines")
            }
            StreamError::MisplacedLast { seq } => {
                write!(f, "chunk {seq}: misplaced end-of-stream flag")
            }
            StreamError::Unterminated => write!(f, "chunk stream ended without a last frame"),
        }
    }
}

impl std::error::Error for StreamError {}

/// Receiver side: validates a complete frame sequence (gapless from 0,
/// checksums, record counts, exactly one trailing `last`) and returns the
/// concatenated text.
pub fn reassemble(frames: &[ChunkFrame]) -> Result<String, StreamError> {
    match frames.last() {
        None => return Err(StreamError::Unterminated),
        Some(f) if !f.last => return Err(StreamError::Unterminated),
        Some(_) => {}
    }
    let mut text = String::with_capacity(frames.iter().map(|f| f.payload.len()).sum());
    for (i, frame) in frames.iter().enumerate() {
        let expected = i as u64;
        if frame.seq != expected {
            return Err(StreamError::SequenceGap { expected, found: frame.seq });
        }
        if frame.last != (i == frames.len() - 1) {
            return Err(StreamError::MisplacedLast { seq: frame.seq });
        }
        if fnv1a(frame.payload.as_bytes()) != frame.checksum {
            return Err(StreamError::ChecksumMismatch { seq: frame.seq });
        }
        if frame.payload.lines().count() as u64 != frame.records {
            return Err(StreamError::RecordCountMismatch { seq: frame.seq });
        }
        text.push_str(&frame.payload);
    }
    Ok(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(max_bytes: usize, lines: &[&str]) -> Vec<ChunkFrame> {
        let mut frames = Vec::new();
        let mut w = ChunkWriter::new(max_bytes, |f| frames.push(f));
        for l in lines {
            w.push_line(l);
        }
        w.finish();
        frames
    }

    #[test]
    fn round_trips_across_many_small_chunks() {
        let lines: Vec<String> = (0..500).map(|i| format!("net{i},{i},1")).collect();
        let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
        let frames = collect(32, &refs);
        assert!(frames.len() > 10, "32-byte target must fragment 500 lines");
        assert!(frames.iter().rev().skip(1).all(|f| !f.last));
        let text = reassemble(&frames).unwrap();
        assert_eq!(text.lines().collect::<Vec<_>>(), refs);
    }

    #[test]
    fn empty_stream_still_terminates_cleanly() {
        let frames = collect(1024, &[]);
        assert_eq!(frames.len(), 1, "finish always emits the last frame");
        assert!(frames[0].last);
        assert_eq!(frames[0].records, 0);
        assert_eq!(reassemble(&frames).unwrap(), "");
    }

    #[test]
    fn severed_stream_is_detected() {
        let mut frames = collect(16, &["aaaa", "bbbb", "cccc", "dddd"]);
        frames.pop();
        assert_eq!(reassemble(&frames), Err(StreamError::Unterminated));
        assert_eq!(reassemble(&[]), Err(StreamError::Unterminated));
    }

    #[test]
    fn reordered_and_corrupt_frames_are_detected() {
        let frames = collect(4, &["one", "two", "three"]);
        assert!(frames.len() >= 3);

        let mut swapped = frames.clone();
        swapped.swap(0, 1);
        assert!(matches!(reassemble(&swapped), Err(StreamError::SequenceGap { .. })));

        let mut corrupt = frames.clone();
        corrupt[1].payload = "tampered\n".into();
        assert_eq!(reassemble(&corrupt), Err(StreamError::ChecksumMismatch { seq: 1 }));

        let mut missing = frames.clone();
        missing.remove(1);
        assert!(matches!(reassemble(&missing), Err(StreamError::SequenceGap { .. })));

        let mut early_last = frames;
        early_last[0].last = true;
        assert_eq!(reassemble(&early_last), Err(StreamError::MisplacedLast { seq: 0 }));
    }

    #[test]
    fn flush_emits_partial_frames_on_demand() {
        let frames = std::cell::RefCell::new(Vec::new());
        let mut w = ChunkWriter::new(1 << 20, |f| frames.borrow_mut().push(f));
        w.push_line("a");
        w.flush();
        assert_eq!(frames.borrow().len(), 1, "flush forces the buffered line out");
        w.flush();
        assert_eq!(frames.borrow().len(), 1, "an empty flush emits nothing");
        w.push_line("b");
        w.finish();
        let text = reassemble(&frames.borrow()).unwrap();
        assert_eq!(text, "a\nb\n");
    }

    #[test]
    #[should_panic(expected = "newline-free")]
    fn rejects_embedded_newlines() {
        let mut w = ChunkWriter::new(64, |_| {});
        w.push_line("torn\nline");
    }
}
