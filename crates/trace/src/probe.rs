//! The probe: what kernels hold, and the per-thread recorder behind it.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::poison::lock_recover;
use crate::{Metrics, Trace, TraceKind, TraceRecord, NO_LP};

/// Default per-thread ring capacity (records). At 48 bytes per record this
/// bounds a worker's buffer to ~48 MB; overflowing records are counted, not
/// stored.
pub const DEFAULT_CAPACITY: usize = 1 << 20;

/// A flushed per-thread buffer: the records plus its overflow count.
#[derive(Debug)]
struct FlushedBuffer {
    records: Vec<TraceRecord>,
    dropped: u64,
}

/// State shared by every handle of one enabled probe.
#[derive(Debug)]
struct Shared {
    /// Wall-clock epoch: `ProbeHandle::now_ns` measures from here.
    epoch: Instant,
    /// Per-thread capacity for new handles.
    capacity: usize,
    /// Buffers flushed by finished handles, merged by [`Probe::take_trace`].
    flushed: Mutex<Vec<FlushedBuffer>>,
    /// The run's metric registry.
    metrics: Metrics,
}

/// A handle kernels attach to record a run.
///
/// `Probe::default()` is *disabled*: handles created from it discard every
/// record behind a single predictable branch, no allocation, no locking, no
/// clock reads — the uninstrumented fast path. [`Probe::enabled`] turns
/// recording on; cloning shares the underlying recorder, so a kernel, its
/// workers and its virtual machine all feed one [`Trace`].
///
/// # Examples
///
/// ```
/// use parsim_trace::{Probe, TraceKind};
///
/// let probe = Probe::enabled();
/// let mut h = probe.handle();
/// h.emit(5, 3, 0, 1, TraceKind::GateEval, 1);
/// drop(h); // flush
/// let trace = probe.take_trace();
/// assert_eq!(trace.records().len(), 1);
/// assert_eq!(trace.records()[0].vt, 3);
/// ```
#[derive(Clone, Default)]
pub struct Probe {
    shared: Option<Arc<Shared>>,
}

impl std::fmt::Debug for Probe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Probe").field("enabled", &self.is_enabled()).finish()
    }
}

impl Probe {
    /// A disabled probe (the default): recording is a no-op.
    pub fn disabled() -> Self {
        Probe { shared: None }
    }

    /// An enabled probe with the default per-thread ring capacity.
    pub fn enabled() -> Self {
        Probe::with_capacity(DEFAULT_CAPACITY)
    }

    /// An enabled probe whose per-thread rings hold at most `capacity`
    /// records; overflow is drop-counted, never blocking.
    pub fn with_capacity(capacity: usize) -> Self {
        Probe {
            shared: Some(Arc::new(Shared {
                epoch: Instant::now(),
                capacity,
                flushed: Mutex::new(Vec::new()),
                metrics: Metrics::new(),
            })),
        }
    }

    /// Whether this probe records anything.
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Creates a per-thread recorder. Each worker thread (or each modeled
    /// kernel) should hold its own handle; handles never contend while
    /// recording and flush into the probe when dropped.
    pub fn handle(&self) -> ProbeHandle {
        match &self.shared {
            None => ProbeHandle { shared: None, buf: Vec::new(), capacity: 0, dropped: 0 },
            Some(s) => ProbeHandle {
                shared: Some(Arc::clone(s)),
                buf: Vec::with_capacity(s.capacity.min(4096)),
                capacity: s.capacity,
                dropped: 0,
            },
        }
    }

    /// The metric registry, or `None` when disabled.
    pub fn metrics(&self) -> Option<&Metrics> {
        self.shared.as_ref().map(|s| &s.metrics)
    }

    /// Collects everything flushed so far into a [`Trace`], sorted by
    /// timeline position. Call after the instrumented run returns (all
    /// kernel handles are dropped by then). Flushed buffers are consumed;
    /// the metric registry is left in place for [`Probe::metrics`].
    pub fn take_trace(&self) -> Trace {
        let Some(s) = &self.shared else { return Trace::default() };
        let mut flushed = lock_recover(&s.flushed);
        let mut records = Vec::with_capacity(flushed.iter().map(|b| b.records.len()).sum());
        let mut dropped = 0u64;
        for buf in flushed.drain(..) {
            records.extend(buf.records);
            dropped = dropped.saturating_add(buf.dropped);
        }
        drop(flushed);
        // Stable: records of one thread stay in emission order within a
        // timeline position.
        records.sort_by_key(TraceRecord::key);
        Trace::new(records, dropped)
    }
}

/// A per-thread recorder created by [`Probe::handle`].
///
/// Recording appends to a thread-private bounded buffer — no locks, no
/// atomics on the hot path. The buffer is flushed into the probe exactly
/// once, when the handle is dropped.
#[derive(Debug)]
pub struct ProbeHandle {
    shared: Option<Arc<Shared>>,
    buf: Vec<TraceRecord>,
    capacity: usize,
    dropped: u64,
}

impl ProbeHandle {
    /// Whether records are kept (false for handles of a disabled probe).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Nanoseconds of host wall-clock since the probe was created (0 when
    /// disabled — no clock read on the disabled path). Threaded kernels use
    /// this as the timeline axis.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        match &self.shared {
            None => 0,
            Some(s) => u64::try_from(s.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX),
        }
    }

    /// Records one action. A no-op when disabled; drop-counted once the
    /// ring is full.
    #[inline]
    pub fn emit(&mut self, t: u64, vt: u64, processor: u32, lp: u32, kind: TraceKind, arg: u64) {
        if self.shared.is_none() {
            return;
        }
        if self.buf.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        self.buf.push(TraceRecord { t, vt, processor, lp, kind, arg });
    }

    /// Runs `wait` (a barrier wait, typically
    /// `parsim_runtime::RoundBarrier::wait`), recording the measured span
    /// as a [`TraceKind::BarrierWait`] record attributed to `processor` at
    /// virtual time `vt` (no LP). When disabled this is exactly `wait()` —
    /// no clock reads.
    ///
    /// Every threaded kernel synchronizes through this helper; taking a
    /// closure instead of a concrete barrier type keeps this crate free of
    /// any synchronization primitive choice (`std::sync::Barrier` is
    /// banned workspace-wide: it hangs peers when a participant dies).
    pub fn barrier_span<T>(&mut self, processor: u32, vt: u64, wait: impl FnOnce() -> T) -> T {
        if self.shared.is_none() {
            return wait();
        }
        let start = self.now_ns();
        let out = wait();
        let end = self.now_ns();
        self.emit(start, vt, processor, NO_LP, TraceKind::BarrierWait, end - start);
        out
    }

    /// A sibling handle feeding the same probe, starting with an empty
    /// buffer. Used by values that own a handle but need `Clone` (e.g. the
    /// virtual machine); the sibling records independently.
    pub fn fork(&self) -> ProbeHandle {
        match &self.shared {
            None => ProbeHandle { shared: None, buf: Vec::new(), capacity: 0, dropped: 0 },
            Some(s) => ProbeHandle {
                shared: Some(Arc::clone(s)),
                buf: Vec::with_capacity(self.capacity.min(4096)),
                capacity: self.capacity,
                dropped: 0,
            },
        }
    }

    /// Records already-counted overflow from an external buffer (used by
    /// tests; kernels normally just call [`emit`](Self::emit)).
    pub fn count_dropped(&mut self, n: u64) {
        if self.shared.is_some() {
            self.dropped = self.dropped.saturating_add(n);
        }
    }
}

impl Drop for ProbeHandle {
    fn drop(&mut self) {
        let Some(s) = self.shared.take() else { return };
        if self.buf.is_empty() && self.dropped == 0 {
            return;
        }
        let records = std::mem::take(&mut self.buf);
        lock_recover(&s.flushed).push(FlushedBuffer { records, dropped: self.dropped });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_probe_records_nothing() {
        let probe = Probe::disabled();
        assert!(!probe.is_enabled());
        let mut h = probe.handle();
        assert!(!h.enabled());
        assert_eq!(h.now_ns(), 0);
        h.emit(1, 1, 0, 0, TraceKind::GateEval, 1);
        drop(h);
        let t = probe.take_trace();
        assert!(t.is_empty());
        assert!(probe.metrics().is_none());
    }

    #[test]
    fn overflow_is_drop_counted() {
        let probe = Probe::with_capacity(3);
        let mut h = probe.handle();
        for i in 0..10 {
            h.emit(i, 0, 0, 0, TraceKind::Enqueue, i);
        }
        drop(h);
        let t = probe.take_trace();
        assert_eq!(t.records().len(), 3);
        assert_eq!(t.dropped(), 7);
    }

    #[test]
    fn handles_merge_sorted() {
        let probe = Probe::enabled();
        let mut a = probe.handle();
        let mut b = probe.handle();
        a.emit(5, 0, 0, 0, TraceKind::GateEval, 1);
        b.emit(2, 0, 1, 0, TraceKind::GateEval, 1);
        a.emit(9, 0, 0, 0, TraceKind::GateEval, 1);
        drop(a);
        drop(b);
        let t = probe.take_trace();
        let ts: Vec<u64> = t.records().iter().map(|r| r.t).collect();
        assert_eq!(ts, vec![2, 5, 9]);
        // Second take sees nothing new (buffers were consumed).
        assert!(probe.take_trace().is_empty());
    }

    #[test]
    fn threads_record_concurrently() {
        let probe = Probe::enabled();
        std::thread::scope(|s| {
            for p in 0..4u32 {
                let mut h = probe.handle();
                s.spawn(move || {
                    for i in 0..100 {
                        h.emit(i, i, p, 0, TraceKind::Enqueue, i);
                    }
                });
            }
        });
        let t = probe.take_trace();
        assert_eq!(t.records().len(), 400);
    }
}
