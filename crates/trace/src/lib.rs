//! Time-resolved observability for parallel logic simulation.
//!
//! The kernels' end-of-run aggregates (`SimStats`) say *how much* protocol
//! work a run did; this crate says *when and where*. A [`Probe`] is handed
//! to any kernel (they all accept one via `with_probe`); while the run
//! executes, per-thread recorders collect fixed-size [`TraceRecord`]s —
//! gate evaluations, queue operations with depth, event/null/anti-message
//! sends, barrier waits, rollbacks with depth, state saves, GVT advances,
//! and the virtual machine's charge/idle spans. Afterwards the merged
//! [`Trace`] feeds:
//!
//! * [`analysis`] — per-processor utilization timelines, load-imbalance and
//!   critical-path accounting, per-channel null-message ratios, rollback
//!   cascades, queue-depth and GVT trajectories: the dynamic phenomena
//!   behind every §V performance claim;
//! * [`to_perfetto_json`] — Chrome/Perfetto `trace_event` JSON for
//!   [ui.perfetto.dev](https://ui.perfetto.dev);
//! * [`to_csv`] — flat CSV for ad-hoc plotting;
//! * [`run_report`] — a human-readable text report.
//!
//! The disabled probe ([`Probe::disabled`], the `Default`) is the zero-cost
//! path: no allocation, no clock reads, one predictable branch per
//! potential record — instrumented kernels behave bit-identically to
//! uninstrumented ones (the facade test suite asserts exactly that).
//!
//! # Examples
//!
//! ```
//! use parsim_trace::{analysis, Probe, TraceKind};
//!
//! let probe = Probe::enabled();
//! let mut h = probe.handle();
//! // A kernel would emit these while running:
//! h.emit(0, 0, 0, 7, TraceKind::GateEval, 1);
//! h.emit(3, 2, 0, 7, TraceKind::Enqueue, 1);
//! drop(h);
//!
//! let trace = probe.take_trace();
//! assert_eq!(trace.count(TraceKind::GateEval), 1);
//! assert_eq!(analysis::lp_activity(&trace), vec![(7, 1)]);
//! let json = parsim_trace::to_perfetto_json(&trace);
//! assert!(json.contains("\"traceEvents\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod metrics;
mod perfetto;
mod poison;
mod probe;
mod record;
mod report;
pub mod stream;
mod trace;

pub use metrics::{Histogram, Metrics, MetricsSnapshot};
pub use perfetto::{to_csv, to_perfetto_json};
pub use probe::{Probe, ProbeHandle, DEFAULT_CAPACITY};
pub use record::{TraceKind, TraceRecord, NO_LP};
pub use report::run_report;
pub use stream::{reassemble, ChunkFrame, ChunkWriter, StreamError, DEFAULT_CHUNK_BYTES};
pub use trace::Trace;
