//! A lightweight registry of named counters, gauges and histograms.
//!
//! Metrics complement the trace ring: where the ring answers *when and
//! where*, the registry answers *how much in total* — cheaply enough to be
//! updated from run summaries without touching kernel hot loops.

use std::collections::BTreeMap;
use std::fmt::{self, Display};
use std::sync::Mutex;

use crate::poison::lock_recover;

/// A power-of-two-bucketed histogram of `u64` samples.
///
/// Bucket `i` counts samples in `[2^i, 2^(i+1))` (bucket 0 counts zeros and
/// ones); exact min/max/sum ride along so means and extremes stay exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 64],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [0; 64], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn observe(&mut self, v: u64) {
        let idx = (64 - v.leading_zeros()).saturating_sub(1) as usize;
        self.buckets[idx.min(63)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// An upper bound of the `q`-quantile (0.0–1.0) from the bucket
    /// boundaries, or `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target.max(1) {
                let upper = if i >= 63 { u64::MAX } else { (1u64 << (i + 1)) - 1 };
                return Some(upper.min(self.max));
            }
        }
        Some(self.max)
    }
}

#[derive(Debug, Default, Clone, PartialEq)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// The registry. Shared behind the probe; updates take a short lock, so
/// callers should aggregate locally and publish summaries (end of run, end
/// of superstep), not per event.
#[derive(Debug, Default)]
pub struct Metrics {
    inner: Mutex<Inner>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Adds `n` to the named counter (created at zero on first use).
    pub fn counter_add(&self, name: &str, n: u64) {
        let mut inner = lock_recover(&self.inner);
        let c = inner.counters.entry(name.to_owned()).or_insert(0);
        *c = c.saturating_add(n);
    }

    /// Sets the named gauge.
    pub fn gauge_set(&self, name: &str, v: f64) {
        lock_recover(&self.inner).gauges.insert(name.to_owned(), v);
    }

    /// Records a sample into the named histogram.
    pub fn observe(&self, name: &str, v: u64) {
        lock_recover(&self.inner).histograms.entry(name.to_owned()).or_default().observe(v);
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = lock_recover(&self.inner);
        MetricsSnapshot {
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            histograms: inner.histograms.clone(),
        }
    }
}

/// An immutable copy of the registry, used by reports and exporters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// Returns `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

impl Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, v) in &self.counters {
            writeln!(f, "{name} = {v}")?;
        }
        for (name, v) in &self.gauges {
            writeln!(f, "{name} = {v:.3}")?;
        }
        for (name, h) in &self.histograms {
            writeln!(
                f,
                "{name}: n={} mean={:.1} min={} max={} p99<={}",
                h.count(),
                h.mean(),
                h.min().unwrap_or(0),
                h.max().unwrap_or(0),
                h.quantile(0.99).unwrap_or(0),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let m = Metrics::new();
        m.counter_add("events", 10);
        m.counter_add("events", 5);
        m.gauge_set("util", 0.75);
        let s = m.snapshot();
        assert_eq!(s.counters["events"], 15);
        assert_eq!(s.gauges["util"], 0.75);
        assert!(s.to_string().contains("events = 15"));
    }

    #[test]
    fn counter_saturates() {
        let m = Metrics::new();
        m.counter_add("x", u64::MAX - 1);
        m.counter_add("x", 100);
        assert_eq!(m.snapshot().counters["x"], u64::MAX);
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::default();
        for v in [1u64, 2, 4, 8, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(1000));
        assert!((h.mean() - 203.0).abs() < 1.0);
        assert!(h.quantile(0.5).unwrap() <= 8);
        assert!(h.quantile(1.0).unwrap() >= 1000);
        let empty = Histogram::default();
        assert_eq!(empty.quantile(0.5), None);
        assert_eq!(empty.min(), None);
    }
}
