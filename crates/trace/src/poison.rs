//! Poison-tolerant lock acquisition for the trace crate.
//!
//! Instrumentation must never turn a worker panic elsewhere into a
//! cascade of `expect("… lock")` panics while the runtime winds a failed
//! run down: every critical section in this crate is a plain data move
//! (buffer push, map insert) with no unwind point mid-update, so a
//! poisoned guard is always safe to recover. This is the trace-side twin
//! of `parsim_runtime::lock_recover` — the runtime crate depends on this
//! one, so the helper cannot be shared.

use std::sync::{Mutex, MutexGuard, PoisonError};

/// Acquires `lock`, recovering the guard if a panicking thread poisoned it.
#[inline]
pub(crate) fn lock_recover<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(PoisonError::into_inner)
}
