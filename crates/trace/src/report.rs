//! The human-readable run report: every analysis pass rendered as text.

use std::fmt::Write as _;

use crate::analysis::{
    gvt_trajectory, load_summary, lp_activity, null_message_summary, queue_depth_summary,
    rollback_summary, utilization_timeline,
};
use crate::{MetricsSnapshot, Trace, TraceKind};

/// Renders a trace (plus optional metrics) into a multi-section text
/// report: record inventory, per-processor utilization timeline and
/// busy/idle accounting, hottest LPs, null-message channels, rollback
/// dynamics and the GVT trajectory. Sections with no data are omitted.
pub fn run_report(title: &str, trace: &Trace, metrics: Option<&MetricsSnapshot>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== trace report: {title} ===");

    // Record inventory.
    let _ =
        writeln!(out, "\nrecords ({} total, {} dropped):", trace.records().len(), trace.dropped());
    for kind in TraceKind::all() {
        let n = trace.count(kind);
        if n > 0 {
            let _ = writeln!(
                out,
                "  {:<14} {:>10}  (arg sum {})",
                kind.label(),
                n,
                trace.sum_arg(kind)
            );
        }
    }
    if let Some((start, end)) = trace.extent() {
        let _ = writeln!(out, "  timeline extent: [{start}, {end})");
    }

    // Utilization timeline + load accounting.
    if let (Some(u), Some(l)) = (utilization_timeline(trace, 60), load_summary(trace)) {
        let _ = writeln!(out, "\nper-processor utilization (60 bins of {} units):", u.bin_width);
        for (p, _) in u.cells.iter().enumerate() {
            let _ = writeln!(
                out,
                "  P{p:<3} |{}| busy {:>10} idle {:>10} mean {:>5.2}",
                u.sparkline(p),
                l.busy[p],
                l.idle[p],
                u.mean(p)
            );
        }
        let _ = writeln!(
            out,
            "  load imbalance (max/mean busy): {:.2}; critical processor P{} ({:.0}% busy)",
            l.imbalance,
            l.critical_processor,
            l.critical_busy_fraction * 100.0
        );
    }

    // Hottest LPs.
    let lps = lp_activity(trace);
    if !lps.is_empty() {
        let total: u64 = lps.iter().map(|&(_, n)| n).sum();
        let _ = writeln!(out, "\nhottest LPs (of {}; {} evaluations total):", lps.len(), total);
        for &(lp, n) in lps.iter().take(10) {
            let _ = writeln!(
                out,
                "  lp {lp:<6} {n:>10} evals ({:.1}%)",
                n as f64 / total.max(1) as f64 * 100.0
            );
        }
    }

    // Queue depth.
    let q = queue_depth_summary(trace);
    if q.samples > 0 {
        let _ = writeln!(
            out,
            "\npending-event-set depth: mean {:.1}, max {} over {} samples",
            q.mean_depth, q.max_depth, q.samples
        );
    }

    // Null messages (conservative).
    let nulls = null_message_summary(trace);
    if nulls.nulls > 0 {
        let _ = writeln!(
            out,
            "\nnull messages: {} vs {} real events — ratio {:.1}%",
            nulls.nulls,
            nulls.events,
            nulls.ratio() * 100.0
        );
        let _ = writeln!(out, "  heaviest channels (src lp -> dst lp: nulls/events):");
        for ((src, dst), (n, e)) in nulls.worst_channels().into_iter().take(8) {
            let _ = writeln!(out, "    {src:>4} -> {dst:<4}  {n:>8} / {e}");
        }
    }

    // Rollbacks (optimistic).
    let rb = rollback_summary(trace, 256);
    if rb.rollbacks > 0 {
        let _ = writeln!(
            out,
            "\nrollbacks: {} undoing {} events (max depth {}, longest cascade {})",
            rb.rollbacks,
            rb.events_undone,
            rb.max_depth,
            rb.longest_cascade()
        );
        for &(lp, n) in rb.per_lp.iter().take(8) {
            let _ = writeln!(out, "    lp {lp:<6} {n:>6} rollbacks");
        }
    }

    // GVT trajectory.
    let gvt = gvt_trajectory(trace);
    if !gvt.is_empty() {
        let (first, last) = (gvt.first().expect("nonempty"), gvt.last().expect("nonempty"));
        let _ = writeln!(
            out,
            "\nGVT: {} advances, {} -> {} ticks over [{}, {}]",
            gvt.len(),
            first.1,
            last.1,
            first.0,
            last.0
        );
    }

    if let Some(m) = metrics {
        if !m.is_empty() {
            let _ = writeln!(out, "\nmetrics:\n{m}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Metrics, Probe, NO_LP};

    #[test]
    fn report_covers_populated_sections() {
        let probe = Probe::enabled();
        let mut h = probe.handle();
        h.emit(0, 0, 0, NO_LP, TraceKind::Charge, 10);
        h.emit(1, 2, 0, 1, TraceKind::GateEval, 3);
        h.emit(2, 2, 0, 1, TraceKind::NullMessage, 2);
        h.emit(3, 2, 0, 1, TraceKind::Rollback, 4);
        h.emit(4, 2, 0, 0, TraceKind::GvtAdvance, 7);
        h.emit(5, 2, 0, 0, TraceKind::Enqueue, 3);
        drop(h);
        let trace = probe.take_trace();
        let metrics = Metrics::new();
        metrics.counter_add("events", 9);
        let report = run_report("test", &trace, Some(&metrics.snapshot()));
        for needle in [
            "trace report: test",
            "gate_eval",
            "utilization",
            "hottest LPs",
            "null messages",
            "rollbacks: 1",
            "GVT: 1 advances",
            "events = 9",
            "pending-event-set depth",
        ] {
            assert!(report.contains(needle), "missing {needle:?} in:\n{report}");
        }
    }

    #[test]
    fn empty_trace_report_is_small() {
        let report = run_report("empty", &Trace::default(), None);
        assert!(report.contains("0 total"));
        assert!(!report.contains("rollbacks"));
    }
}
