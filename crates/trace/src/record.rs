//! The wire format of the trace layer: one fixed-size record per observed
//! action.

use std::fmt::{self, Display};

/// Sentinel for "no LP context" (machine-level records, kernel setup).
pub const NO_LP: u32 = u32::MAX;

/// What happened. Every variant is an *instant* except [`TraceKind::Charge`],
/// [`TraceKind::Idle`], [`TraceKind::BarrierWait`] and
/// [`TraceKind::Compile`], which are *spans* covering `[t, t + arg)` on the
/// record's processor timeline.
///
/// The `arg` payload of a [`TraceRecord`] is kind-specific; the meaning is
/// documented per variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum TraceKind {
    /// Gate evaluation(s). `arg` = number of evaluations the record stands
    /// for (1 for kernels that emit per evaluation; LP-batched kernels emit
    /// one record per activation with the batch size).
    GateEval,
    /// Event pushed into a pending-event set. `arg` = queue depth after the
    /// push.
    Enqueue,
    /// Event popped from a pending-event set. `arg` = queue depth after the
    /// pop.
    Dequeue,
    /// A real event message crossed an LP/processor boundary. `arg` =
    /// destination LP.
    MessageSend,
    /// A null message (conservative kernels). `arg` = destination LP.
    NullMessage,
    /// An anti-message (optimistic kernels). `arg` = destination LP.
    AntiMessage,
    /// Time spent blocked at a barrier (span). `arg` = waited duration in
    /// timeline units.
    BarrierWait,
    /// A rollback. `arg` = events undone (the rollback depth).
    Rollback,
    /// A state snapshot. `arg` = state slots captured.
    StateSave,
    /// GVT advanced (or a deadlock recovery committed a new floor). `arg` =
    /// the new GVT estimate in virtual-time ticks.
    GvtAdvance,
    /// CPU work charged to a processor (span, virtual-machine kernels).
    /// `arg` = cost units charged.
    Charge,
    /// Idle time waiting for a message or barrier (span, virtual-machine
    /// kernels). `arg` = idle units.
    Idle,
    /// A fault was injected into the run (kill, delivery fault, lock
    /// poisoning). `arg` = the targeted worker or destination mailbox.
    FaultInject,
    /// An injected fault was recovered by the runtime (reliable delivery,
    /// poison-tolerant locking). `arg` = the recovered worker or mailbox.
    FaultRecover,
    /// Netlist-to-bytecode compilation (span): the circuit was lowered to
    /// compiled blocks before the run. `arg` = compile duration in
    /// timeline units.
    Compile,
    /// A compiled-artifact cache hit: compilation was skipped and the
    /// bytecode loaded from the on-disk store. `arg` = artifact bytes
    /// loaded.
    CacheHit,
    /// Messages overflowed a full SPSC mailbox ring into its spill vector
    /// this round (delivery stays lossless but takes the mutexed slow
    /// path — a sizing signal, not an error). `arg` = spilled messages.
    RingSpill,
}

impl TraceKind {
    /// Returns `true` for span kinds (`[t, t + arg)`), `false` for instants.
    pub fn is_span(self) -> bool {
        matches!(
            self,
            TraceKind::Charge | TraceKind::Idle | TraceKind::BarrierWait | TraceKind::Compile
        )
    }

    /// A short stable label for exports and reports.
    pub fn label(self) -> &'static str {
        match self {
            TraceKind::GateEval => "gate_eval",
            TraceKind::Enqueue => "enqueue",
            TraceKind::Dequeue => "dequeue",
            TraceKind::MessageSend => "msg_send",
            TraceKind::NullMessage => "null_msg",
            TraceKind::AntiMessage => "anti_msg",
            TraceKind::BarrierWait => "barrier_wait",
            TraceKind::Rollback => "rollback",
            TraceKind::StateSave => "state_save",
            TraceKind::GvtAdvance => "gvt_advance",
            TraceKind::Charge => "charge",
            TraceKind::Idle => "idle",
            TraceKind::FaultInject => "fault_inject",
            TraceKind::FaultRecover => "fault_recover",
            TraceKind::Compile => "compile",
            TraceKind::CacheHit => "cache_hit",
            TraceKind::RingSpill => "ring_spill",
        }
    }

    /// All kinds, in a stable order (report tables iterate this).
    pub fn all() -> [TraceKind; 17] {
        [
            TraceKind::GateEval,
            TraceKind::Enqueue,
            TraceKind::Dequeue,
            TraceKind::MessageSend,
            TraceKind::NullMessage,
            TraceKind::AntiMessage,
            TraceKind::BarrierWait,
            TraceKind::Rollback,
            TraceKind::StateSave,
            TraceKind::GvtAdvance,
            TraceKind::Charge,
            TraceKind::Idle,
            TraceKind::FaultInject,
            TraceKind::FaultRecover,
            TraceKind::Compile,
            TraceKind::CacheHit,
            TraceKind::RingSpill,
        ]
    }
}

impl Display for TraceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One observed action.
///
/// `t` is the record's position on the *timeline axis*, whose unit is
/// kernel-defined:
///
/// * virtual-machine kernels — modeled cost units (the processor clock);
/// * threaded kernels — host wall-clock nanoseconds since probe creation;
/// * the sequential / oblivious reference kernels — virtual-time ticks.
///
/// `vt` is the simulated (virtual) time the action concerns, when one
/// applies; records without a meaningful virtual time carry 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Timeline position (see type docs for the unit).
    pub t: u64,
    /// Virtual time of the action, in ticks (0 when not applicable).
    pub vt: u64,
    /// Processor the action ran on.
    pub processor: u32,
    /// Logical process the action belonged to, or [`NO_LP`].
    pub lp: u32,
    /// What happened.
    pub kind: TraceKind,
    /// Kind-specific payload (see [`TraceKind`]).
    pub arg: u64,
}

impl TraceRecord {
    /// The timeline ordering key: position, then processor, then LP — the
    /// stable order every trace consumer sees.
    pub fn key(&self) -> (u64, u32, u32) {
        (self.t, self.processor, self.lp)
    }

    /// End of the record on the timeline (`t + arg` for spans, `t` for
    /// instants).
    pub fn end(&self) -> u64 {
        if self.kind.is_span() {
            self.t.saturating_add(self.arg)
        } else {
            self.t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_and_instants() {
        assert!(TraceKind::Charge.is_span());
        assert!(TraceKind::BarrierWait.is_span());
        assert!(!TraceKind::GateEval.is_span());
        let span =
            TraceRecord { t: 10, vt: 0, processor: 0, lp: NO_LP, kind: TraceKind::Charge, arg: 5 };
        assert_eq!(span.end(), 15);
        let inst =
            TraceRecord { t: 10, vt: 3, processor: 0, lp: 2, kind: TraceKind::GateEval, arg: 1 };
        assert_eq!(inst.end(), 10);
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::BTreeSet<_> =
            TraceKind::all().iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), TraceKind::all().len());
    }
}
