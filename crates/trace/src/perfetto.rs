//! Chrome / Perfetto `trace_event` JSON export.
//!
//! The output loads directly in [ui.perfetto.dev](https://ui.perfetto.dev)
//! or `chrome://tracing`: processors become track groups (`pid`), LPs become
//! tracks (`tid`), charge/idle/barrier spans become complete (`"X"`) events,
//! protocol actions become instants (`"i"`) and queue depth becomes a
//! counter (`"C"`) series.
//!
//! Timestamps are emitted in microsecond units as required by the format;
//! timeline units map 1:1 onto microseconds (the absolute scale is
//! arbitrary for modeled traces anyway, and for wall-clock traces a 1000×
//! zoom is irrelevant to reading the timeline). The serializer is
//! hand-rolled and fully deterministic: identical traces produce identical
//! bytes, which the golden-file test relies on.

use std::fmt::Write as _;

use crate::{Trace, TraceKind, TraceRecord, NO_LP};

/// Escapes a string for a JSON string literal (control characters, quotes,
/// backslashes).
fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// The `tid` a record renders under: LP-scoped records get their LP track,
/// machine-level records a per-processor "cpu" track.
fn tid(r: &TraceRecord) -> u64 {
    if r.lp == NO_LP {
        0
    } else {
        u64::from(r.lp) + 1
    }
}

fn push_common(out: &mut String, r: &TraceRecord) {
    let _ = write!(out, "\"ts\":{},\"pid\":{},\"tid\":{}", r.t, r.processor, tid(r));
}

/// Serializes a trace to Chrome `trace_event` JSON (object form, with a
/// `traceEvents` array). Deterministic: byte-identical output for equal
/// traces.
pub fn to_perfetto_json(trace: &Trace) -> String {
    let mut out = String::with_capacity(64 + trace.records().len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut emit = |line: &str, out: &mut String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('\n');
        out.push_str(line);
    };

    // Metadata: name the processor track groups and the machine-level tid 0.
    let mut line = String::new();
    for p in 0..trace.processors() {
        line.clear();
        let _ = write!(
            line,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{p},\"tid\":0,\
             \"args\":{{\"name\":\"processor {p}\"}}}}"
        );
        emit(&line, &mut out);
        line.clear();
        let _ = write!(
            line,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{p},\"tid\":0,\
             \"args\":{{\"name\":\"cpu\"}}}}"
        );
        emit(&line, &mut out);
    }

    for r in trace.records() {
        line.clear();
        line.push_str("{\"name\":\"");
        escape_json(r.kind.label(), &mut line);
        line.push_str("\",");
        match r.kind {
            TraceKind::Charge | TraceKind::Idle | TraceKind::BarrierWait | TraceKind::Compile => {
                let _ = write!(line, "\"ph\":\"X\",\"dur\":{},", r.arg);
                push_common(&mut line, r);
                let _ = write!(line, ",\"args\":{{\"vt\":{}}}}}", r.vt);
            }
            TraceKind::Enqueue | TraceKind::Dequeue => {
                // Counter series per processor: pending-event-set depth.
                line.clear();
                let _ = write!(
                    line,
                    "{{\"name\":\"queue depth\",\"ph\":\"C\",\"ts\":{},\"pid\":{},\"tid\":0,\
                     \"args\":{{\"depth\":{}}}}}",
                    r.t, r.processor, r.arg
                );
            }
            _ => {
                line.push_str("\"ph\":\"i\",\"s\":\"t\",");
                push_common(&mut line, r);
                let _ = write!(line, ",\"args\":{{\"vt\":{},\"arg\":{}}}}}", r.vt, r.arg);
            }
        }
        emit(&line, &mut out);
    }
    out.push_str("\n]}\n");
    out
}

/// Serializes a trace to CSV (`t,vt,processor,lp,kind,arg` with a header
/// row). LP [`NO_LP`] is rendered as an empty cell.
pub fn to_csv(trace: &Trace) -> String {
    let mut out = String::with_capacity(32 + trace.records().len() * 32);
    out.push_str("t,vt,processor,lp,kind,arg\n");
    for r in trace.records() {
        let _ = write!(out, "{},{},{},", r.t, r.vt, r.processor);
        if r.lp != NO_LP {
            let _ = write!(out, "{}", r.lp);
        }
        let _ = writeln!(out, ",{},{}", r.kind.label(), r.arg);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Probe;

    fn sample() -> Trace {
        let probe = Probe::enabled();
        let mut h = probe.handle();
        h.emit(0, 0, 0, NO_LP, TraceKind::Charge, 8);
        h.emit(2, 5, 0, 3, TraceKind::GateEval, 1);
        h.emit(4, 5, 1, 0, TraceKind::Enqueue, 2);
        h.emit(8, 0, 0, NO_LP, TraceKind::Idle, 4);
        drop(h);
        probe.take_trace()
    }

    #[test]
    fn perfetto_shape() {
        let json = to_perfetto_json(&sample());
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"name\":\"processor 1\""));
        assert!(json.trim_end().ends_with("]}"));
    }

    #[test]
    fn perfetto_is_deterministic() {
        assert_eq!(to_perfetto_json(&sample()), to_perfetto_json(&sample()));
    }

    #[test]
    fn csv_shape() {
        let csv = to_csv(&sample());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "t,vt,processor,lp,kind,arg");
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[1], "0,0,0,,charge,8"); // NO_LP renders empty
        assert_eq!(lines[2], "2,5,0,3,gate_eval,1");
    }

    #[test]
    fn escaping() {
        let mut s = String::new();
        escape_json("a\"b\\c\nd\u{1}", &mut s);
        assert_eq!(s, "a\\\"b\\\\c\\nd\\u0001");
    }
}
