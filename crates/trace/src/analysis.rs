//! Analysis passes over a recorded [`Trace`].
//!
//! Each pass condenses the raw record stream into one of the §V dynamic
//! phenomena: where the busy time went (utilization timelines, load
//! imbalance, critical-path accounting), what the conservative protocol
//! paid per channel (null-message ratios), and how optimism destabilized
//! (rollback cascades).

use std::collections::BTreeMap;

use crate::{Trace, TraceKind, TraceRecord};

/// Per-processor activity binned over the timeline.
///
/// For virtual-machine traces (which carry [`TraceKind::Charge`] /
/// [`TraceKind::Idle`] spans) each cell is the *busy fraction* of the bin,
/// in `[0, 1]`. For instant-only traces (threaded and reference kernels)
/// each cell is the event count of the bin normalized by the busiest cell —
/// a relative activity heat, not a true utilization.
#[derive(Debug, Clone, PartialEq)]
pub struct UtilizationTimeline {
    /// Timeline start of bin 0.
    pub start: u64,
    /// Width of each bin in timeline units.
    pub bin_width: u64,
    /// `cells[p][b]` — processor `p`'s activity in bin `b`.
    pub cells: Vec<Vec<f64>>,
}

impl UtilizationTimeline {
    /// Mean activity of processor `p` across all bins.
    pub fn mean(&self, p: usize) -> f64 {
        let row = &self.cells[p];
        if row.is_empty() {
            0.0
        } else {
            row.iter().sum::<f64>() / row.len() as f64
        }
    }

    /// A one-line sparkline (` .:-=+*#%@`) of processor `p`'s row, for text
    /// reports.
    pub fn sparkline(&self, p: usize) -> String {
        const RAMP: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
        self.cells[p].iter().map(|&v| RAMP[((v * 9.0).round() as usize).min(9)]).collect()
    }
}

/// Computes the utilization timeline with `bins` columns.
///
/// Returns `None` for an empty trace or `bins == 0`.
pub fn utilization_timeline(trace: &Trace, bins: usize) -> Option<UtilizationTimeline> {
    let (start, end) = trace.extent()?;
    if bins == 0 {
        return None;
    }
    let p_count = trace.processors();
    let bin_width = ((end - start) / bins as u64).max(1);
    let bin_of = |t: u64| (((t.max(start) - start) / bin_width) as usize).min(bins - 1);
    let mut cells = vec![vec![0.0f64; bins]; p_count];

    let spans: Vec<&TraceRecord> = trace.of_kind(TraceKind::Charge).filter(|r| r.arg > 0).collect();
    if spans.is_empty() {
        // Instant-count mode: bin everything except idle-ish spans.
        for r in trace.records() {
            if !matches!(r.kind, TraceKind::Idle | TraceKind::BarrierWait) {
                cells[r.processor as usize][bin_of(r.t)] += 1.0;
            }
        }
        let peak = cells.iter().flatten().copied().fold(0.0f64, f64::max);
        if peak > 0.0 {
            for row in &mut cells {
                for v in row {
                    *v /= peak;
                }
            }
        }
    } else {
        // Busy-fraction mode: spread each charge span over the bins it
        // overlaps. `bin_width` is floored, so the timeline tail past
        // `start + bins * bin_width` all lands in the last bin — that bin's
        // nominal edge can sit at or before `s`, hence the explicit break.
        for r in spans {
            let (mut s, e) = (r.t, r.end());
            while s < e {
                let b = bin_of(s);
                let bin_end = start + (b as u64 + 1) * bin_width;
                if b == bins - 1 || bin_end <= s {
                    cells[r.processor as usize][b] += (e - s) as f64 / bin_width as f64;
                    break;
                }
                let overlap = e.min(bin_end) - s;
                cells[r.processor as usize][b] += overlap as f64 / bin_width as f64;
                s = bin_end;
            }
        }
        for row in &mut cells {
            for v in row {
                *v = v.min(1.0);
            }
        }
    }
    Some(UtilizationTimeline { start, bin_width, cells })
}

/// Where the busy time went, per processor — the load-imbalance /
/// critical-path summary.
///
/// The *critical processor* is the one with the largest `busy + idle`
/// extent: on a virtual machine its clock *is* the modeled makespan, so
/// everything on it is on the critical path of the parallel run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadSummary {
    /// Busy units charged per processor (charge spans, or event counts for
    /// instant-only traces).
    pub busy: Vec<u64>,
    /// Idle units per processor (waiting on messages or barriers).
    pub idle: Vec<u64>,
    /// `max(busy) / mean(busy)` — 1.0 is perfect balance.
    pub imbalance: f64,
    /// The processor bounding the run (largest busy + idle).
    pub critical_processor: usize,
    /// Fraction of the critical processor's extent that was busy.
    pub critical_busy_fraction: f64,
}

/// Computes per-processor busy/idle totals and the imbalance ratio.
///
/// Returns `None` for an empty trace.
pub fn load_summary(trace: &Trace) -> Option<LoadSummary> {
    let p_count = trace.processors();
    if p_count == 0 {
        return None;
    }
    let mut busy = vec![0u64; p_count];
    let mut idle = vec![0u64; p_count];
    let has_spans = trace.of_kind(TraceKind::Charge).any(|r| r.arg > 0);
    for r in trace.records() {
        let p = r.processor as usize;
        match r.kind {
            TraceKind::Charge => busy[p] = busy[p].saturating_add(r.arg),
            TraceKind::Idle | TraceKind::BarrierWait => idle[p] = idle[p].saturating_add(r.arg),
            _ if !has_spans => busy[p] = busy[p].saturating_add(1),
            _ => {}
        }
    }
    let mean = busy.iter().sum::<u64>() as f64 / p_count as f64;
    let max = busy.iter().copied().max().unwrap_or(0);
    let imbalance = if mean > 0.0 { max as f64 / mean } else { 1.0 };
    let critical_processor = (0..p_count)
        .max_by_key(|&p| (busy[p].saturating_add(idle[p]), std::cmp::Reverse(p)))
        .expect("p_count > 0");
    let extent = busy[critical_processor].saturating_add(idle[critical_processor]);
    let critical_busy_fraction =
        if extent == 0 { 1.0 } else { busy[critical_processor] as f64 / extent as f64 };
    Some(LoadSummary { busy, idle, imbalance, critical_processor, critical_busy_fraction })
}

/// Gate-evaluation totals per LP, sorted hottest-first — the per-LP
/// utilization view (LP = gate for the reference kernels).
///
/// Records batched under [`crate::NO_LP`] (e.g. the oblivious kernel's
/// per-tick aggregate) carry no per-LP information and are skipped.
pub fn lp_activity(trace: &Trace) -> Vec<(u32, u64)> {
    let mut per_lp: BTreeMap<u32, u64> = BTreeMap::new();
    for r in trace.of_kind(TraceKind::GateEval) {
        if r.lp == crate::NO_LP {
            continue;
        }
        let e = per_lp.entry(r.lp).or_insert(0);
        *e = e.saturating_add(r.arg.max(1));
    }
    let mut v: Vec<(u32, u64)> = per_lp.into_iter().collect();
    v.sort_by_key(|&(lp, n)| (std::cmp::Reverse(n), lp));
    v
}

/// Null-message accounting per directed LP channel (conservative kernels).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NullMessageSummary {
    /// `(src LP, dst LP) → (null messages, real event messages)`.
    pub per_channel: BTreeMap<(u32, u32), (u64, u64)>,
    /// Total null messages.
    pub nulls: u64,
    /// Total real event messages.
    pub events: u64,
}

impl NullMessageSummary {
    /// Overall `nulls / (nulls + events)`, the §V overhead ratio (0.0 when
    /// no messages flowed).
    pub fn ratio(&self) -> f64 {
        let total = self.nulls + self.events;
        if total == 0 {
            0.0
        } else {
            self.nulls as f64 / total as f64
        }
    }

    /// Channels sorted by null count, heaviest first.
    pub fn worst_channels(&self) -> Vec<((u32, u32), (u64, u64))> {
        let mut v: Vec<_> = self.per_channel.iter().map(|(&k, &c)| (k, c)).collect();
        v.sort_by_key(|&((s, d), (n, _))| (std::cmp::Reverse(n), s, d));
        v
    }
}

/// Tallies [`TraceKind::NullMessage`] and [`TraceKind::MessageSend`] records
/// per `(source LP, destination LP)` channel.
pub fn null_message_summary(trace: &Trace) -> NullMessageSummary {
    let mut s = NullMessageSummary::default();
    for r in trace.records() {
        match r.kind {
            TraceKind::NullMessage => {
                s.per_channel.entry((r.lp, r.arg as u32)).or_default().0 += 1;
                s.nulls += 1;
            }
            TraceKind::MessageSend => {
                s.per_channel.entry((r.lp, r.arg as u32)).or_default().1 += 1;
                s.events += 1;
            }
            _ => {}
        }
    }
    s
}

/// Rollback dynamics (optimistic kernels).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RollbackSummary {
    /// Number of rollbacks.
    pub rollbacks: u64,
    /// Events undone in total.
    pub events_undone: u64,
    /// Largest single rollback (events undone).
    pub max_depth: u64,
    /// Cascade sizes: lengths of maximal runs of rollbacks closer than the
    /// chosen gap on the timeline. A healthy run has many 1s; thrashing
    /// shows up as long cascades.
    pub cascades: Vec<usize>,
    /// Rollbacks per LP, sorted worst-first.
    pub per_lp: Vec<(u32, u64)>,
}

impl RollbackSummary {
    /// Length of the longest cascade (0 when no rollbacks happened).
    pub fn longest_cascade(&self) -> usize {
        self.cascades.iter().copied().max().unwrap_or(0)
    }
}

/// Summarizes [`TraceKind::Rollback`] records. `cascade_gap` is the maximum
/// timeline distance between consecutive rollbacks that still counts as the
/// same cascade (pass the kernel's rollback cost, or a small multiple of
/// it).
pub fn rollback_summary(trace: &Trace, cascade_gap: u64) -> RollbackSummary {
    let mut s = RollbackSummary::default();
    let mut per_lp: BTreeMap<u32, u64> = BTreeMap::new();
    let mut last_t: Option<u64> = None;
    let mut run_len = 0usize;
    for r in trace.of_kind(TraceKind::Rollback) {
        s.rollbacks += 1;
        s.events_undone = s.events_undone.saturating_add(r.arg);
        s.max_depth = s.max_depth.max(r.arg);
        *per_lp.entry(r.lp).or_insert(0) += 1;
        match last_t {
            Some(t) if r.t.saturating_sub(t) <= cascade_gap => run_len += 1,
            _ => {
                if run_len > 0 {
                    s.cascades.push(run_len);
                }
                run_len = 1;
            }
        }
        last_t = Some(r.t);
    }
    if run_len > 0 {
        s.cascades.push(run_len);
    }
    s.per_lp = per_lp.into_iter().collect();
    s.per_lp.sort_by_key(|&(lp, n)| (std::cmp::Reverse(n), lp));
    s
}

/// Pending-event-set depth statistics from enqueue/dequeue records.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QueueDepthSummary {
    /// Samples seen (enqueue + dequeue records).
    pub samples: u64,
    /// Largest observed depth.
    pub max_depth: u64,
    /// Mean observed depth.
    pub mean_depth: f64,
}

/// Summarizes queue depth over [`TraceKind::Enqueue`] /
/// [`TraceKind::Dequeue`] records.
pub fn queue_depth_summary(trace: &Trace) -> QueueDepthSummary {
    let mut s = QueueDepthSummary::default();
    let mut sum = 0u64;
    for r in trace.records() {
        if matches!(r.kind, TraceKind::Enqueue | TraceKind::Dequeue) {
            s.samples += 1;
            s.max_depth = s.max_depth.max(r.arg);
            sum = sum.saturating_add(r.arg);
        }
    }
    if s.samples > 0 {
        s.mean_depth = sum as f64 / s.samples as f64;
    }
    s
}

/// The trajectory of GVT over the run: `(timeline t, gvt ticks)` per
/// [`TraceKind::GvtAdvance`] record. A flat stretch is a stalled run.
pub fn gvt_trajectory(trace: &Trace) -> Vec<(u64, u64)> {
    trace.of_kind(TraceKind::GvtAdvance).map(|r| (r.t, r.arg)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Probe;

    fn trace_from(records: &[(u64, u64, u32, u32, TraceKind, u64)]) -> Trace {
        let probe = Probe::enabled();
        let mut h = probe.handle();
        for &(t, vt, p, lp, kind, arg) in records {
            h.emit(t, vt, p, lp, kind, arg);
        }
        drop(h);
        probe.take_trace()
    }

    #[test]
    fn utilization_busy_fraction_mode() {
        // P0 busy [0,10); P1 busy [10,20): each half of a 2-bin timeline.
        let t = trace_from(&[
            (0, 0, 0, 0, TraceKind::Charge, 10),
            (10, 0, 1, 0, TraceKind::Charge, 10),
        ]);
        let u = utilization_timeline(&t, 2).unwrap();
        assert!(u.cells[0][0] > 0.9 && u.cells[0][1] < 0.1);
        assert!(u.cells[1][1] > 0.9 && u.cells[1][0] < 0.1);
        assert!((u.mean(0) - 0.5).abs() < 0.05);
        assert_eq!(u.sparkline(0).len(), 2);
    }

    #[test]
    fn utilization_spans_past_floored_bin_edges_terminate() {
        // Extent [0, 100) with 60 bins floors bin_width to 1, so bins only
        // nominally cover [0, 60) — the span at t=80 must fold into the
        // last bin instead of spinning on a non-advancing bin edge.
        let t =
            trace_from(&[(0, 0, 0, 0, TraceKind::Charge, 1), (80, 0, 0, 0, TraceKind::Charge, 20)]);
        let u = utilization_timeline(&t, 60).unwrap();
        assert_eq!(u.bin_width, 1);
        assert!((u.cells[0][59] - 1.0).abs() < f64::EPSILON, "tail clamps to 1.0");
    }

    #[test]
    fn utilization_instant_mode() {
        let t = trace_from(&[
            (0, 0, 0, 0, TraceKind::GateEval, 1),
            (1, 0, 0, 0, TraceKind::GateEval, 1),
            (9, 0, 1, 0, TraceKind::GateEval, 1),
        ]);
        let u = utilization_timeline(&t, 2).unwrap();
        assert_eq!(u.cells[0][0], 1.0); // busiest cell normalizes to 1
        assert_eq!(u.cells[1][1], 0.5);
        assert!(utilization_timeline(&Trace::default(), 4).is_none());
    }

    #[test]
    fn load_summary_finds_critical_processor() {
        let t = trace_from(&[
            (0, 0, 0, 0, TraceKind::Charge, 100),
            (0, 0, 1, 0, TraceKind::Charge, 20),
            (20, 0, 1, 0, TraceKind::Idle, 80),
        ]);
        let s = load_summary(&t).unwrap();
        assert_eq!(s.busy, vec![100, 20]);
        assert_eq!(s.idle, vec![0, 80]);
        assert!((s.imbalance - 100.0 / 60.0).abs() < 1e-9);
        assert_eq!(s.critical_processor, 0);
        assert_eq!(s.critical_busy_fraction, 1.0);
    }

    #[test]
    fn null_ratio_per_channel() {
        let t = trace_from(&[
            (0, 0, 0, 0, TraceKind::NullMessage, 1),
            (1, 0, 0, 0, TraceKind::NullMessage, 1),
            (2, 0, 0, 0, TraceKind::MessageSend, 1),
            (3, 0, 1, 1, TraceKind::NullMessage, 0),
        ]);
        let s = null_message_summary(&t);
        assert_eq!(s.nulls, 3);
        assert_eq!(s.events, 1);
        assert!((s.ratio() - 0.75).abs() < 1e-9);
        assert_eq!(s.per_channel[&(0, 1)], (2, 1));
        assert_eq!(s.worst_channels()[0].0, (0, 1));
    }

    #[test]
    fn rollback_cascades_split_on_gap() {
        let t = trace_from(&[
            (0, 0, 0, 0, TraceKind::Rollback, 3),
            (5, 0, 0, 0, TraceKind::Rollback, 2),
            (100, 0, 0, 1, TraceKind::Rollback, 7),
        ]);
        let s = rollback_summary(&t, 10);
        assert_eq!(s.rollbacks, 3);
        assert_eq!(s.events_undone, 12);
        assert_eq!(s.max_depth, 7);
        assert_eq!(s.cascades, vec![2, 1]);
        assert_eq!(s.longest_cascade(), 2);
        assert_eq!(s.per_lp[0], (0, 2));
    }

    #[test]
    fn queue_depth_and_gvt() {
        let t = trace_from(&[
            (0, 0, 0, 0, TraceKind::Enqueue, 1),
            (1, 0, 0, 0, TraceKind::Enqueue, 2),
            (2, 0, 0, 0, TraceKind::Dequeue, 1),
            (3, 0, 0, 0, TraceKind::GvtAdvance, 40),
        ]);
        let q = queue_depth_summary(&t);
        assert_eq!(q.samples, 3);
        assert_eq!(q.max_depth, 2);
        assert!((q.mean_depth - 4.0 / 3.0).abs() < 1e-9);
        assert_eq!(gvt_trajectory(&t), vec![(3, 40)]);
    }
}
