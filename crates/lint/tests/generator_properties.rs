//! Property tests over the synthetic circuit generators.
//!
//! Two families:
//! 1. Every `generate::*` circuit, across its whole parameter space, is
//!    clean under the undriven-input, dead-logic, constant-cone and
//!    duplicate-gate passes. (Cycle-freedom is proven by construction: the
//!    generators call `finish()`, which rejects combinational cycles.)
//! 2. Seeding a defect — a dead gate, a constant cone, a duplicate gate —
//!    into an arbitrary clean circuit is flagged with exactly the right
//!    code at the right site.

use parsim_lint::passes::{ConstCone, DeadLogic, DuplicateGate, UnusedInput};
use parsim_lint::{Code, Diagnostic, LintContext, Linter};
use parsim_logic::GateKind;
use parsim_netlist::generate::{self, RandomDagConfig};
use parsim_netlist::{Circuit, CircuitBuilder, Delay, DelayModel, GateId};
use proptest::prelude::*;

/// The logic-quality subset every generated circuit must satisfy at any
/// size (the performance passes are legitimately size-sensitive: a wide
/// ripple adder *is* deep and narrow).
fn logic_linter() -> Linter {
    let mut l = Linter::new();
    l.register(UnusedInput);
    l.register(DeadLogic);
    l.register(ConstCone);
    l.register(DuplicateGate);
    l
}

fn logic_lint(c: &Circuit) -> Vec<Diagnostic> {
    logic_linter().run(&LintContext::new(c)).diagnostics().to_vec()
}

/// An arbitrary clean chain-DAG: every input feeds the chain, every gate
/// feeds the next, the tail is the output. Returns the builder, the tail
/// gate, and the tail gate's (kind, fanin) for duplicate seeding.
fn clean_chain(inputs: usize, gates: usize) -> (CircuitBuilder, GateId, (GateKind, [GateId; 2])) {
    const KINDS: [GateKind; 4] = [GateKind::And, GateKind::Or, GateKind::Xor, GateKind::Nand];
    let mut b = CircuitBuilder::new("chain");
    let ins: Vec<GateId> = (0..inputs).map(|i| b.input(format!("i{i}"))).collect();
    let mut prev = ins[0];
    let mut last = (GateKind::And, [ins[0], ins[0]]);
    for k in 0..gates {
        let other = ins[k % inputs];
        let kind = KINDS[k % KINDS.len()];
        last = (kind, [prev, other]);
        prev = b.gate(kind, [prev, other], Delay::UNIT);
    }
    b.output("y", prev);
    (b, prev, last)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_dags_lint_clean(
        gates in 20usize..400,
        inputs in 1usize..48,
        max_fanin in 1usize..6,
        seq_fraction in 0.0f64..0.4,
        locality in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let c = generate::random_dag(&RandomDagConfig {
            gates,
            inputs,
            max_fanin,
            seq_fraction,
            locality,
            seed,
            ..Default::default()
        });
        // Undriven inputs and dead logic must never appear, whatever the
        // dice rolled. (Duplicates are re-rolled with a bounded retry, so
        // only the degenerate tiny-pool corner could still produce one;
        // gates ≥ 20 with this fanin range is far from it.)
        let diags = logic_lint(&c);
        prop_assert!(diags.is_empty(), "{}:\n{diags:?}", c.name());
    }

    #[test]
    fn structured_generators_lint_clean(bits in 2usize..10, leaves in 2usize..40) {
        let subjects: Vec<Circuit> = vec![
            generate::ripple_adder(bits, DelayModel::Unit),
            generate::carry_select_adder(bits, DelayModel::Unit),
            generate::array_multiplier(bits.min(6), DelayModel::Unit),
            generate::lfsr(bits, DelayModel::Unit),
            generate::shift_register(bits, DelayModel::Unit),
            generate::counter(bits, DelayModel::Unit),
            generate::ring(bits, DelayModel::Unit),
            generate::tree(GateKind::Nand, leaves, DelayModel::Unit),
            generate::tree(GateKind::Xor, leaves, DelayModel::Unit),
            generate::mesh(bits, leaves, DelayModel::Unit),
            generate::decoder(bits.min(6), DelayModel::Unit),
            generate::priority_encoder(bits, DelayModel::Unit),
            generate::tristate_bus(bits, DelayModel::Unit),
        ];
        for c in &subjects {
            let diags = logic_lint(c);
            prop_assert!(diags.is_empty(), "{}:\n{diags:?}", c.name());
        }
    }

    #[test]
    fn seeded_dead_gate_is_flagged(inputs in 1usize..8, gates in 1usize..40) {
        let (mut b, tail, _) = clean_chain(inputs, gates);
        let dead = b.gate(GateKind::Not, [tail], Delay::UNIT);
        let c = b.finish().unwrap();
        let diags = logic_lint(&c);
        let hits: Vec<_> = diags.iter().filter(|d| d.code == Code::DEAD_LOGIC).collect();
        prop_assert_eq!(hits.len(), 1, "{:?}", diags);
        prop_assert!(hits[0].sites.contains(&dead));
    }

    #[test]
    fn seeded_constant_cone_is_flagged(inputs in 1usize..8, gates in 1usize..40) {
        let (mut b, tail, _) = clean_chain(inputs, gates);
        let zero = b.constant(false);
        let folded = b.gate(GateKind::Not, [zero], Delay::UNIT);
        let live = b.gate(GateKind::Or, [tail, folded], Delay::UNIT);
        b.output("z", live);
        let c = b.finish().unwrap();
        let diags = logic_lint(&c);
        let hits: Vec<_> = diags.iter().filter(|d| d.code == Code::CONST_CONE).collect();
        prop_assert_eq!(hits.len(), 1, "{:?}", diags);
        prop_assert!(hits[0].sites.contains(&folded));
        prop_assert!(!hits[0].sites.contains(&live));
    }

    #[test]
    fn seeded_duplicate_gate_is_flagged(inputs in 1usize..8, gates in 1usize..40) {
        let (mut b, _, (kind, [f0, f1])) = clean_chain(inputs, gates);
        // Re-emit the tail gate with its fanin swapped: commutative kinds
        // must still be recognized as structural duplicates.
        let twin = b.gate(kind, [f1, f0], Delay::UNIT);
        b.output("z", twin);
        let c = b.finish().unwrap();
        let diags = logic_lint(&c);
        let hits: Vec<_> = diags.iter().filter(|d| d.code == Code::DUPLICATE_GATE).collect();
        prop_assert_eq!(hits.len(), 1, "{:?}", diags);
        prop_assert!(hits[0].sites.contains(&twin));
        prop_assert_eq!(hits[0].sites.len(), 2);
    }
}
