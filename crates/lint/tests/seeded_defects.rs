//! One seeded defect per lint pass: each test starts from a known-clean
//! circuit, introduces exactly one flaw, runs the *full* default linter (or
//! the build-time checker for structural flaws) and asserts that precisely
//! the expected diagnostic comes back — right code, right severity, and at
//! least one site pointing at the seeded gate.

use parsim_lint::{check_build, Code, Diagnostic, LintContext, Linter, Severity};
use parsim_logic::GateKind;
use parsim_netlist::{bench, Circuit, CircuitBuilder, Delay};
use parsim_partition::{GateWeights, Partition};

/// Runs the default linter (no partition) and returns the diagnostics.
fn lint(c: &Circuit) -> Vec<Diagnostic> {
    Linter::with_default_passes().run(&LintContext::new(c)).diagnostics().to_vec()
}

/// Asserts the report contains exactly one diagnostic, with the given code
/// and severity, whose sites include `site`.
fn assert_single(
    diags: &[Diagnostic],
    code: Code,
    severity: Severity,
    site: parsim_netlist::GateId,
) {
    assert_eq!(diags.len(), 1, "expected exactly the seeded defect, got: {diags:?}");
    assert_eq!(diags[0].code, code);
    assert_eq!(diags[0].severity, severity);
    assert!(diags[0].sites.contains(&site), "sites {:?} missing seeded {site}", diags[0].sites);
}

/// A minimal clean base: `y = a AND b`. Returns the builder plus the ids of
/// `a`, `b` and the AND, for seeding defects against.
fn clean_base() -> (CircuitBuilder, [parsim_netlist::GateId; 3]) {
    let mut b = CircuitBuilder::new("base");
    let a = b.input("a");
    let x = b.input("b");
    let and = b.gate(GateKind::And, [a, x], Delay::UNIT);
    b.output("y", and);
    (b, [a, x, and])
}

#[test]
fn base_is_clean() {
    let c = clean_base().0.finish().unwrap();
    assert!(lint(&c).is_empty());
}

// ── build-time structural defects ─────────────────────────────────────────

#[test]
fn seeded_empty_circuit() {
    let report = check_build(CircuitBuilder::new("empty")).unwrap_err();
    assert!(report.has_errors());
    assert_eq!(report.diagnostics().len(), 1);
    assert_eq!(report.diagnostics()[0].code, Code::EMPTY_CIRCUIT);
    assert_eq!(report.diagnostics()[0].severity, Severity::Error);
}

#[test]
fn seeded_undefined_gate() {
    let (mut b, _) = clean_base();
    let ghost = b.declare("ghost");
    let report = check_build(b).unwrap_err();
    assert_single(report.diagnostics(), Code::UNDEFINED_GATE, Severity::Error, ghost);
}

#[test]
fn seeded_bad_arity() {
    let (mut b, [a, x, _]) = clean_base();
    let bad = b.named_gate("two_pin_not", GateKind::Not, [a, x], Delay::UNIT);
    b.output("z", bad);
    let report = check_build(b).unwrap_err();
    assert_single(report.diagnostics(), Code::BAD_ARITY, Severity::Error, bad);
}

#[test]
fn seeded_duplicate_name() {
    let (mut b, [a, _, _]) = clean_base();
    let g1 = b.named_gate("twin", GateKind::Buf, [a], Delay::UNIT);
    let g2 = b.named_gate("twin", GateKind::Not, [a], Delay::UNIT);
    b.output("o1", g1);
    b.output("o2", g2);
    let report = check_build(b).unwrap_err();
    assert!(report.diagnostics().iter().any(|d| {
        d.code == Code::DUPLICATE_NAME
            && d.severity == Severity::Error
            && d.sites.contains(&g1)
            && d.sites.contains(&g2)
    }));
}

#[test]
fn seeded_combinational_cycle() {
    let (mut b, _) = clean_base();
    let back = b.declare("back");
    let fwd = b.named_gate("fwd", GateKind::Not, [back], Delay::UNIT);
    b.define(back, GateKind::Not, [fwd], Delay::UNIT);
    b.output("osc", back);
    let report = check_build(b).unwrap_err();
    assert_single(report.diagnostics(), Code::COMBINATIONAL_CYCLE, Severity::Error, back);
    assert!(report.diagnostics()[0].sites.contains(&fwd));
    assert!(report.diagnostics()[0].message.contains("\"back\""));
}

// ── logic-quality defects ─────────────────────────────────────────────────

#[test]
fn seeded_unused_input() {
    let (mut b, _) = clean_base();
    let spare = b.input("spare");
    let c = b.finish().unwrap();
    assert_single(&lint(&c), Code::UNUSED_INPUT, Severity::Warning, spare);
}

#[test]
fn seeded_dead_logic() {
    let (mut b, [_, _, y]) = clean_base();
    let dead = b.named_gate("dead", GateKind::Not, [y], Delay::UNIT);
    let c = b.finish().unwrap();
    assert_single(&lint(&c), Code::DEAD_LOGIC, Severity::Warning, dead);
}

#[test]
fn seeded_const_cone() {
    let (mut b, [_, _, y]) = clean_base();
    let one = b.constant(true);
    let folded = b.named_gate("folded", GateKind::Not, [one], Delay::UNIT);
    // Route the constant into live logic so only ConstCone fires; the OR has
    // a non-constant fanin and must stay unflagged.
    let or = b.gate(GateKind::Or, [y, folded], Delay::UNIT);
    b.output("z", or);
    let c = b.finish().unwrap();
    let diags = lint(&c);
    assert_single(&diags, Code::CONST_CONE, Severity::Note, folded);
    assert!(!diags[0].sites.contains(&or));
}

#[test]
fn seeded_duplicate_gate() {
    let (mut b, [a, x, _]) = clean_base();
    // Same function as the base AND, fanin order swapped.
    let twin = b.named_gate("twin", GateKind::And, [x, a], Delay::UNIT);
    b.output("z", twin);
    let c = b.finish().unwrap();
    let diags = lint(&c);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].code, Code::DUPLICATE_GATE);
    assert_eq!(diags[0].severity, Severity::Note);
    assert!(diags[0].sites.contains(&twin));
    assert_eq!(diags[0].sites.len(), 2);
}

// ── performance defects ───────────────────────────────────────────────────

#[test]
fn seeded_fanout_hotspot() {
    let mut b = CircuitBuilder::new("hot");
    let hub = b.input("hub");
    // 40 sinks on distinct second pins: over the default threshold of 32,
    // but wide and shallow, so no other pass has an opinion.
    for i in 0..40 {
        let other = b.input(format!("in{i}"));
        let g = b.gate(GateKind::And, [hub, other], Delay::UNIT);
        b.output(format!("o{i}"), g);
    }
    let c = b.finish().unwrap();
    assert_single(&lint(&c), Code::FANOUT_HOTSPOT, Severity::Warning, hub);
}

#[test]
fn seeded_shape_imbalance() {
    let mut b = CircuitBuilder::new("needle");
    let a = b.input("a");
    let mut cur = a;
    for _ in 0..30 {
        cur = b.gate(GateKind::Not, [cur], Delay::UNIT);
    }
    b.output("y", cur);
    let c = b.finish().unwrap();
    // The deepest gate is the representative site.
    assert_single(&lint(&c), Code::SHAPE_IMBALANCE, Severity::Note, cur);
}

#[test]
fn seeded_zero_delay_loop() {
    let mut b = CircuitBuilder::new("latch_race");
    let en = b.input("en");
    let a = b.input("a");
    let q = b.declare("q");
    let g = b.named_gate("g", GateKind::And, [q, a], Delay::ZERO);
    b.define(q, GateKind::Latch, [en, g], Delay::ZERO);
    b.output("y", q);
    let c = b.finish().unwrap();
    let diags = lint(&c);
    assert_single(&diags, Code::ZERO_DELAY_LOOP, Severity::Warning, q);
    assert!(diags[0].sites.contains(&g));
}

// ── partition-quality defects ─────────────────────────────────────────────

#[test]
fn seeded_load_imbalance() {
    let c = bench::c17();
    let mut assignment = vec![0usize; c.len()];
    assignment[c.len() - 1] = 1; // 10-vs-1 split
    let p = Partition::new(2, assignment).unwrap();
    let w = GateWeights::uniform(c.len());
    let report = Linter::with_default_passes().run(&LintContext::new(&c).with_partition(&p, &w));
    let diags: Vec<_> = report.with_code(Code::LOAD_IMBALANCE).collect();
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].severity, Severity::Warning);
    assert!(diags[0].sites.iter().all(|&g| p.block_of(g) == 0));
    assert!(!diags[0].sites.is_empty());
}

#[test]
fn seeded_high_cut() {
    // A buffer chain split alternately: every fanout edge crosses blocks.
    let mut b = CircuitBuilder::new("chain");
    let a = b.input("a");
    let mut cur = a;
    for _ in 0..11 {
        cur = b.gate(GateKind::Buf, [cur], Delay::UNIT);
    }
    b.output("y", cur);
    let c = b.finish().unwrap();
    let p = Partition::new(2, (0..c.len()).map(|i| i % 2).collect()).unwrap();
    let w = GateWeights::uniform(c.len());
    let report = Linter::with_default_passes().run(&LintContext::new(&c).with_partition(&p, &w));
    let diags: Vec<_> = report.with_code(Code::HIGH_CUT).collect();
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].severity, Severity::Warning);
    for &g in &diags[0].sites {
        let block = p.block_of(g);
        assert!(c.fanout(g).iter().any(|e| p.block_of(e.gate) != block));
    }
}
