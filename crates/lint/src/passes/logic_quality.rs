//! Logic-quality passes: unused inputs, dead logic, constant cones and
//! structurally duplicate gates.

use std::collections::HashMap;

use parsim_logic::{eval_combinational, GateKind, Logic4};
use parsim_netlist::{Delay, GateId};

use crate::context::LintContext;
use crate::diagnostic::{Code, Diagnostic, Severity};
use crate::linter::LintPass;

/// Flags primary inputs that drive nothing.
///
/// An unused input usually means the netlist was truncated or an input list
/// was copied from a larger design; at simulation time it silently wastes a
/// stimulus channel.
#[derive(Debug, Clone, Copy, Default)]
pub struct UnusedInput;

impl LintPass for UnusedInput {
    fn name(&self) -> &'static str {
        "unused-input"
    }

    fn default_severity(&self) -> Severity {
        Severity::Warning
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let c = ctx.circuit();
        for &pi in c.inputs() {
            if c.fanout(pi).is_empty() && !c.outputs().contains(&pi) {
                out.push(
                    Diagnostic::new(
                        Code::UNUSED_INPUT,
                        self.default_severity(),
                        format!("primary input {} drives nothing", ctx.name_of(pi)),
                    )
                    .with_site(pi)
                    .with_help("remove the input, or wire it into the logic"),
                );
            }
        }
    }
}

/// Flags gates with no forward path to any primary output.
///
/// Dead gates still evaluate and still generate events in the event-driven
/// kernels, so beyond being suspicious they inflate every workload metric
/// the partitioners balance against.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeadLogic;

impl LintPass for DeadLogic {
    fn name(&self) -> &'static str {
        "dead-logic"
    }

    fn default_severity(&self) -> Severity {
        Severity::Warning
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let c = ctx.circuit();
        // Reverse reachability from the primary outputs across *all* edges,
        // sequential ones included: a gate feeding only a DFF that feeds an
        // output is live.
        let mut live = vec![false; c.len()];
        let mut stack: Vec<GateId> = c.outputs().to_vec();
        for &o in c.outputs() {
            live[o.index()] = true;
        }
        while let Some(id) = stack.pop() {
            for &f in c.fanin(id) {
                if !live[f.index()] {
                    live[f.index()] = true;
                    stack.push(f);
                }
            }
        }
        // Primary inputs are UnusedInput's concern; everything else that is
        // unreachable is dead logic.
        let dead: Vec<GateId> =
            c.ids().filter(|&id| !live[id.index()] && c.kind(id) != GateKind::Input).collect();
        if dead.is_empty() {
            return;
        }
        let shown: Vec<String> = dead.iter().take(4).map(|&id| ctx.name_of(id)).collect();
        let suffix = if dead.len() > shown.len() { ", ..." } else { "" };
        out.push(
            Diagnostic::new(
                Code::DEAD_LOGIC,
                self.default_severity(),
                format!(
                    "{} gate(s) have no path to any primary output: {}{suffix}",
                    dead.len(),
                    shown.join(", "),
                ),
            )
            .with_sites(dead)
            .with_help("remove the dead cone, or mark its sink as a primary output"),
        );
    }
}

/// Flags cones of gates that compute compile-time constants.
///
/// A gate whose fanins are all (transitively) constant can be folded into a
/// `CONST0`/`CONST1` driver before simulation; left in place it wastes
/// evaluations and skews activity-based gate weights.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConstCone;

impl LintPass for ConstCone {
    fn name(&self) -> &'static str {
        "const-cone"
    }

    fn default_severity(&self) -> Severity {
        Severity::Note
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let c = ctx.circuit();
        // Propagate constants in topological order. Sequential elements are
        // never folded: their output depends on initialization and clocking,
        // not only on their (possibly constant) data pin.
        let mut value: Vec<Option<Logic4>> = vec![None; c.len()];
        let mut foldable: Vec<GateId> = Vec::new();
        for &id in ctx.levels().order() {
            let kind = c.kind(id);
            match kind {
                GateKind::Const0 => value[id.index()] = Some(Logic4::Zero),
                GateKind::Const1 => value[id.index()] = Some(Logic4::One),
                GateKind::Input | GateKind::Dff | GateKind::Latch => {}
                _ => {
                    let inputs: Option<Vec<Logic4>> =
                        c.fanin(id).iter().map(|&f| value[f.index()]).collect();
                    if let Some(inputs) = inputs {
                        value[id.index()] = Some(eval_combinational(kind, &inputs));
                        foldable.push(id);
                    }
                }
            }
        }
        if foldable.is_empty() {
            return;
        }
        let shown: Vec<String> = foldable
            .iter()
            .take(4)
            .map(|&id| format!("{} = {}", ctx.name_of(id), value[id.index()].expect("folded")))
            .collect();
        let suffix = if foldable.len() > shown.len() { ", ..." } else { "" };
        out.push(
            Diagnostic::new(
                Code::CONST_CONE,
                self.default_severity(),
                format!(
                    "{} gate(s) compute compile-time constants: {}{suffix}",
                    foldable.len(),
                    shown.join(", "),
                ),
            )
            .with_sites(foldable)
            .with_help("fold the cone into a CONST0/CONST1 driver"),
        );
    }
}

/// Flags structurally identical gates (common-subexpression opportunities).
///
/// Two gates are duplicates when they have the same kind, the same delay and
/// the same fanin nets — with fanin order ignored for commutative functions.
/// Merging them shrinks the event population without changing any waveform.
#[derive(Debug, Clone, Copy, Default)]
pub struct DuplicateGate;

fn commutative(kind: GateKind) -> bool {
    use GateKind::{And, Bus, Nand, Nor, Or, Xnor, Xor};
    matches!(kind, And | Nand | Or | Nor | Xor | Xnor | Bus)
}

impl LintPass for DuplicateGate {
    fn name(&self) -> &'static str {
        "duplicate-gate"
    }

    fn default_severity(&self) -> Severity {
        Severity::Note
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let c = ctx.circuit();
        let mut groups: HashMap<(GateKind, Delay, Vec<GateId>), Vec<GateId>> = HashMap::new();
        for (id, g) in c.iter() {
            // Primary inputs are all structurally identical but semantically
            // distinct; constants are caught too cheaply to be interesting
            // unless there are several, which the grouping handles naturally.
            if g.kind() == GateKind::Input {
                continue;
            }
            let mut fanin = g.fanin().to_vec();
            if commutative(g.kind()) {
                fanin.sort_unstable();
            }
            groups.entry((g.kind(), g.delay(), fanin)).or_default().push(id);
        }
        let mut dup_groups: Vec<Vec<GateId>> =
            groups.into_values().filter(|members| members.len() > 1).collect();
        dup_groups.sort_by_key(|members| members[0]);
        for members in dup_groups {
            let kind = c.kind(members[0]);
            let names: Vec<String> = members.iter().map(|&id| ctx.name_of(id)).collect();
            out.push(
                Diagnostic::new(
                    Code::DUPLICATE_GATE,
                    self.default_severity(),
                    format!(
                        "{} {kind} gate(s) compute the same function of the same nets: {}",
                        members.len(),
                        names.join(", "),
                    ),
                )
                .with_sites(members)
                .with_help("merge the duplicates and reroute their fanout"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim_netlist::{bench, Circuit, CircuitBuilder};

    fn run_pass(pass: &dyn LintPass, c: &Circuit) -> Vec<Diagnostic> {
        let ctx = LintContext::new(c);
        let mut out = Vec::new();
        pass.run(&ctx, &mut out);
        out
    }

    #[test]
    fn c17_is_clean_under_all_logic_passes() {
        let c = bench::c17();
        for pass in [&UnusedInput as &dyn LintPass, &DeadLogic, &ConstCone, &DuplicateGate] {
            assert!(run_pass(pass, &c).is_empty(), "pass {} fired on c17", pass.name());
        }
    }

    #[test]
    fn unused_input_flagged() {
        let mut b = CircuitBuilder::new("t");
        let a = b.input("a");
        let unused = b.input("spare");
        let g = b.gate(GateKind::Not, [a], Delay::UNIT);
        b.output("y", g);
        let c = b.finish().unwrap();
        let diags = run_pass(&UnusedInput, &c);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::UNUSED_INPUT);
        assert_eq!(diags[0].sites, vec![unused]);
        assert!(diags[0].message.contains("spare"));
    }

    #[test]
    fn dead_cone_flagged_with_all_members() {
        let mut b = CircuitBuilder::new("t");
        let a = b.input("a");
        let live = b.gate(GateKind::Buf, [a], Delay::UNIT);
        b.output("y", live);
        let d1 = b.named_gate("d1", GateKind::Not, [a], Delay::UNIT);
        let d2 = b.named_gate("d2", GateKind::Not, [d1], Delay::UNIT);
        let c = b.finish().unwrap();
        let diags = run_pass(&DeadLogic, &c);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Warning);
        assert!(diags[0].sites.contains(&d1) && diags[0].sites.contains(&d2));
        assert_eq!(diags[0].sites.len(), 2);
    }

    #[test]
    fn gate_feeding_output_through_dff_is_live() {
        let mut b = CircuitBuilder::new("t");
        let clk = b.input("clk");
        let a = b.input("a");
        let inv = b.gate(GateKind::Not, [a], Delay::UNIT);
        let q = b.gate(GateKind::Dff, [clk, inv], Delay::UNIT);
        b.output("q", q);
        let c = b.finish().unwrap();
        assert!(run_pass(&DeadLogic, &c).is_empty());
    }

    #[test]
    fn const_cone_folds_through_layers() {
        let mut b = CircuitBuilder::new("t");
        let a = b.input("a");
        let one = b.constant(true);
        let zero = b.constant(false);
        let and = b.named_gate("cand", GateKind::And, [one, zero], Delay::UNIT);
        let or = b.named_gate("cor", GateKind::Or, [and, one], Delay::UNIT);
        let live = b.gate(GateKind::And, [a, or], Delay::UNIT);
        b.output("y", live);
        let c = b.finish().unwrap();
        let diags = run_pass(&ConstCone, &c);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::CONST_CONE);
        // The two folded gates, but not the live AND (one non-const fanin).
        assert!(diags[0].sites.contains(&and) && diags[0].sites.contains(&or));
        assert!(!diags[0].sites.contains(&live));
        assert!(diags[0].message.contains(r#""cand" = 0"#));
        assert!(diags[0].message.contains(r#""cor" = 1"#));
    }

    #[test]
    fn dff_breaks_const_propagation() {
        let mut b = CircuitBuilder::new("t");
        let clk = b.input("clk");
        let one = b.constant(true);
        let q = b.gate(GateKind::Dff, [clk, one], Delay::UNIT);
        let g = b.gate(GateKind::Not, [q], Delay::UNIT);
        b.output("y", g);
        let c = b.finish().unwrap();
        assert!(run_pass(&ConstCone, &c).is_empty());
    }

    #[test]
    fn duplicates_detected_modulo_commutativity() {
        let mut b = CircuitBuilder::new("t");
        let a = b.input("a");
        let x = b.input("b");
        let g1 = b.named_gate("g1", GateKind::And, [a, x], Delay::UNIT);
        let g2 = b.named_gate("g2", GateKind::And, [x, a], Delay::UNIT); // same, reordered
        let g3 = b.named_gate("g3", GateKind::Or, [a, x], Delay::UNIT); // different kind
        let y = b.gate(GateKind::Xor, [g1, g2], Delay::UNIT);
        let z = b.gate(GateKind::Xor, [g3, y], Delay::UNIT);
        b.output("y", z);
        let c = b.finish().unwrap();
        let diags = run_pass(&DuplicateGate, &c);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].sites, vec![g1, g2]);
        assert!(diags[0].message.contains("AND"));
    }

    #[test]
    fn mux_operand_order_matters() {
        let mut b = CircuitBuilder::new("t");
        let s = b.input("s");
        let a = b.input("a");
        let x = b.input("b");
        let m1 = b.gate(GateKind::Mux2, [s, a, x], Delay::UNIT);
        let m2 = b.gate(GateKind::Mux2, [s, x, a], Delay::UNIT); // NOT a duplicate
        let y = b.gate(GateKind::Xor, [m1, m2], Delay::UNIT);
        b.output("y", y);
        let c = b.finish().unwrap();
        assert!(run_pass(&DuplicateGate, &c).is_empty());
    }

    #[test]
    fn differing_delay_is_not_a_duplicate() {
        let mut b = CircuitBuilder::new("t");
        let a = b.input("a");
        let x = b.input("b");
        let g1 = b.gate(GateKind::And, [a, x], Delay::new(1));
        let g2 = b.gate(GateKind::And, [a, x], Delay::new(2));
        let y = b.gate(GateKind::Xor, [g1, g2], Delay::UNIT);
        b.output("y", y);
        let c = b.finish().unwrap();
        assert!(run_pass(&DuplicateGate, &c).is_empty());
    }
}
