//! Partition-quality passes: the two §III objectives as lints.
//!
//! Partitioning trades *load balance* (every processor equally busy) against
//! *communication cut* (few cross-processor nets). These passes flag a
//! partition that has drifted too far on either axis; both no-op when the
//! [`LintContext`] carries no partition.

use parsim_netlist::GateId;

use crate::context::LintContext;
use crate::diagnostic::{Code, Diagnostic, Severity};
use crate::linter::LintPass;

/// How many representative sites a partition diagnostic carries at most.
const MAX_SITES: usize = 8;

/// Flags a partition whose heaviest block exceeds the mean load by a factor.
#[derive(Debug, Clone, Copy)]
pub struct LoadImbalance {
    /// Fires when `max_load / mean_load` exceeds this.
    pub max_ratio: f64,
}

impl Default for LoadImbalance {
    fn default() -> Self {
        LoadImbalance { max_ratio: 1.5 }
    }
}

impl LintPass for LoadImbalance {
    fn name(&self) -> &'static str {
        "load-imbalance"
    }

    fn default_severity(&self) -> Severity {
        Severity::Warning
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let (Some(p), Some(w)) = (ctx.partition(), ctx.weights()) else { return };
        let loads = p.loads(w);
        let mean = loads.iter().sum::<f64>() / p.blocks() as f64;
        if mean == 0.0 {
            return;
        }
        let (heaviest, max) = loads
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("partition has at least one block");
        let ratio = max / mean;
        if ratio <= self.max_ratio {
            return;
        }
        let sites: Vec<GateId> = p.members()[heaviest].iter().copied().take(MAX_SITES).collect();
        out.push(
            Diagnostic::new(
                Code::LOAD_IMBALANCE,
                self.default_severity(),
                format!(
                    "block {heaviest} carries {ratio:.2}x the mean load \
                     ({max:.1} vs {mean:.1}; threshold {:.2}x)",
                    self.max_ratio,
                ),
            )
            .with_sites(sites)
            .with_help(
                "rebalance: the simulation advances at the pace of the most loaded processor",
            ),
        );
    }
}

/// Flags a partition that cuts too large a fraction of fanout edges.
#[derive(Debug, Clone, Copy)]
pub struct HighCut {
    /// Fires when `cut_edges / total_edges` exceeds this.
    pub max_cut_fraction: f64,
}

impl Default for HighCut {
    fn default() -> Self {
        HighCut { max_cut_fraction: 0.5 }
    }
}

impl LintPass for HighCut {
    fn name(&self) -> &'static str {
        "high-cut"
    }

    fn default_severity(&self) -> Severity {
        Severity::Warning
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let (Some(p), Some(w)) = (ctx.partition(), ctx.weights()) else { return };
        if p.blocks() < 2 {
            return; // a single block cannot cut anything
        }
        let c = ctx.circuit();
        let quality = p.quality(c, w);
        if quality.cut_fraction <= self.max_cut_fraction {
            return;
        }
        // Representative sites: the first drivers of cut nets.
        let sites: Vec<GateId> = c
            .ids()
            .filter(|&id| {
                let b = p.block_of(id);
                c.fanout(id).iter().any(|e| p.block_of(e.gate) != b)
            })
            .take(MAX_SITES)
            .collect();
        let total_edges: usize = c.ids().map(|id| c.fanout(id).len()).sum();
        out.push(
            Diagnostic::new(
                Code::HIGH_CUT,
                self.default_severity(),
                format!(
                    "partition cuts {} of {total_edges} fanout edges ({:.0}%; threshold {:.0}%)",
                    quality.cut_edges,
                    quality.cut_fraction * 100.0,
                    self.max_cut_fraction * 100.0,
                ),
            )
            .with_sites(sites)
            .with_help(
                "every cut edge is an inter-processor message per event; \
                 try a locality-aware partitioner",
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim_netlist::bench;
    use parsim_partition::{GateWeights, Partition};

    #[test]
    fn passes_skip_without_partition() {
        let c = bench::c17();
        let ctx = LintContext::new(&c);
        let mut out = Vec::new();
        LoadImbalance::default().run(&ctx, &mut out);
        HighCut::default().run(&ctx, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn single_block_is_balanced_and_uncut() {
        let c = bench::c17();
        let p = Partition::single_block(c.len());
        let w = GateWeights::uniform(c.len());
        let ctx = LintContext::new(&c).with_partition(&p, &w);
        let mut out = Vec::new();
        LoadImbalance::default().run(&ctx, &mut out);
        HighCut::default().run(&ctx, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn skewed_loads_flagged_with_heavy_block_sites() {
        let c = bench::c17(); // 11 gates
                              // 10 gates in block 0, 1 in block 1: ratio max/mean = 10/5.5 ≈ 1.82.
        let mut assignment = vec![0usize; c.len()];
        assignment[10] = 1;
        let p = Partition::new(2, assignment).unwrap();
        let w = GateWeights::uniform(c.len());
        let ctx = LintContext::new(&c).with_partition(&p, &w);
        let mut out = Vec::new();
        LoadImbalance::default().run(&ctx, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, Code::LOAD_IMBALANCE);
        // Sites come from the heaviest block (block 0).
        assert!(out[0].sites.iter().all(|&g| p.block_of(g) == 0));
        assert!(!out[0].sites.is_empty());
    }

    #[test]
    fn alternating_partition_has_high_cut() {
        let c = bench::c17();
        let p = Partition::new(2, (0..c.len()).map(|i| i % 2).collect()).unwrap();
        let w = GateWeights::uniform(c.len());
        let ctx = LintContext::new(&c).with_partition(&p, &w);
        let mut out = Vec::new();
        HighCut { max_cut_fraction: 0.25 }.run(&ctx, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, Code::HIGH_CUT);
        // Every site must actually drive a cut edge.
        for &g in &out[0].sites {
            let b = p.block_of(g);
            assert!(c.fanout(g).iter().any(|e| p.block_of(e.gate) != b));
        }
    }
}
