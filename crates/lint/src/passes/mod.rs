//! The built-in lint passes.
//!
//! Grouped by what they protect:
//!
//! * [`structural`] — build-time errors (cycles, undefined gates, arity,
//!   duplicate names) upgraded from [`parsim_netlist::NetlistError`] to
//!   site-carrying diagnostics,
//! * logic quality — [`UnusedInput`], [`DeadLogic`], [`ConstCone`],
//!   [`DuplicateGate`]: correctness-adjacent findings and synthesis
//!   opportunities,
//! * parallel performance — [`FanoutHotspot`], [`ShapeImbalance`],
//!   [`ZeroDelayLoop`]: predictors of event storms, load skew and livelock
//!   in the simulation kernels (§IV),
//! * partition quality — [`LoadImbalance`], [`HighCut`]: the two §III
//!   objectives, load balance and communication cut.

pub mod structural;

mod logic_quality;
mod partition_quality;
mod performance;

pub use logic_quality::{ConstCone, DeadLogic, DuplicateGate, UnusedInput};
pub use partition_quality::{HighCut, LoadImbalance};
pub use performance::{FanoutHotspot, ShapeImbalance, ZeroDelayLoop};
