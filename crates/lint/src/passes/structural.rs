//! Build-time structural errors as diagnostics.
//!
//! These are not [`LintPass`](crate::LintPass)es: a constructed
//! [`Circuit`] is structurally valid by definition,
//! so structural problems can only be observed *during* construction. This
//! module upgrades the builder's error path — [`check_build`] runs
//! [`CircuitBuilder::finish_with_diagnostics`] and converts every
//! [`StructuralIssue`] into a site-carrying [`Diagnostic`], including the
//! full combinational cycle path that the legacy
//! [`NetlistError`](parsim_netlist::NetlistError) only names opaquely.

use parsim_netlist::{Circuit, CircuitBuilder, StructuralIssue, StructuralReport};

use crate::diagnostic::{Code, Diagnostic, Severity};
use crate::report::LintReport;

/// Converts one builder issue into a diagnostic.
pub fn diagnose_issue(issue: &StructuralIssue) -> Diagnostic {
    match issue {
        StructuralIssue::Empty => {
            Diagnostic::new(Code::EMPTY_CIRCUIT, Severity::Error, "circuit contains no gates")
        }
        StructuralIssue::UndefinedGate { gate, name } => Diagnostic::new(
            Code::UNDEFINED_GATE,
            Severity::Error,
            format!("gate {name:?} is referenced but never defined"),
        )
        .with_site(*gate)
        .with_help("define the gate, or remove the references to it"),
        StructuralIssue::BadArity { gate, name, kind, got } => {
            let expected = match (kind.min_inputs(), kind.max_inputs()) {
                (lo, Some(hi)) if lo == hi => format!("exactly {lo}"),
                (lo, Some(hi)) => format!("{lo} to {hi}"),
                (lo, None) => format!("at least {lo}"),
            };
            Diagnostic::new(
                Code::BAD_ARITY,
                Severity::Error,
                format!("gate {name:?} of kind {kind} has {got} inputs, expected {expected}"),
            )
            .with_site(*gate)
        }
        StructuralIssue::DuplicateName { name, gates } => Diagnostic::new(
            Code::DUPLICATE_NAME,
            Severity::Error,
            format!("gate name {name:?} is defined {} times", gates.len()),
        )
        .with_sites(gates.iter().copied())
        .with_help("rename all but one of the gates"),
        StructuralIssue::CombinationalCycle { gates, names } => Diagnostic::new(
            Code::COMBINATIONAL_CYCLE,
            Severity::Error,
            format!(
                "combinational cycle through {}",
                names.iter().map(|n| format!("{n:?}")).collect::<Vec<_>>().join(" -> ")
            ),
        )
        .with_sites(gates.iter().copied())
        .with_help("break the loop with a flip-flop or latch, or remove the feedback path"),
    }
}

/// Converts a whole builder report into diagnostics, in report order.
pub fn diagnose_build(report: &StructuralReport) -> Vec<Diagnostic> {
    report.issues().iter().map(diagnose_issue).collect()
}

/// Finishes a builder, returning either the circuit or a [`LintReport`] with
/// every structural problem as an error diagnostic.
///
/// # Errors
///
/// Returns the report when the circuit under construction is invalid.
///
/// # Examples
///
/// ```
/// use parsim_lint::{check_build, Code};
/// use parsim_logic::GateKind;
/// use parsim_netlist::{CircuitBuilder, Delay};
///
/// let mut b = CircuitBuilder::new("bad_loop");
/// let a = b.declare("a");
/// let c = b.gate(GateKind::Not, [a], Delay::UNIT);
/// b.define(a, GateKind::Not, [c], Delay::UNIT);
/// b.output("y", c);
///
/// let report = check_build(b).unwrap_err();
/// let cycle = &report.diagnostics()[0];
/// assert_eq!(cycle.code, Code::COMBINATIONAL_CYCLE);
/// assert_eq!(cycle.sites.len(), 2); // the full loop, not just a name
/// ```
pub fn check_build(builder: CircuitBuilder) -> Result<Circuit, LintReport> {
    let name = builder.name().to_owned();
    builder
        .finish_with_diagnostics()
        .map_err(|report| LintReport::new(name, diagnose_build(&report)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim_logic::GateKind;
    use parsim_netlist::{Delay, GateId};

    #[test]
    fn empty_circuit_reported() {
        let report = check_build(CircuitBuilder::new("e")).unwrap_err();
        assert_eq!(report.diagnostics().len(), 1);
        assert_eq!(report.diagnostics()[0].code, Code::EMPTY_CIRCUIT);
        assert_eq!(report.circuit(), "e");
    }

    #[test]
    fn all_issues_collected_not_just_first() {
        let mut b = CircuitBuilder::new("multi");
        let a = b.input("a");
        let ghost = b.declare("ghost");
        b.gate(GateKind::And, [a, ghost], Delay::UNIT);
        b.named_gate("m", GateKind::Mux2, [a, a], Delay::UNIT); // bad arity
        b.named_gate("a", GateKind::Buf, [a], Delay::UNIT); // duplicate name
        let report = check_build(b).unwrap_err();
        let codes: Vec<Code> = report.diagnostics().iter().map(|d| d.code).collect();
        assert!(codes.contains(&Code::UNDEFINED_GATE));
        assert!(codes.contains(&Code::BAD_ARITY));
        assert!(codes.contains(&Code::DUPLICATE_NAME));
        assert!(report.has_errors());
    }

    #[test]
    fn cycle_diagnostic_carries_full_path() {
        let mut b = CircuitBuilder::new("loop3");
        let p = b.input("p");
        let x = b.declare("x");
        let y = b.named_gate("y", GateKind::And, [p, x], Delay::UNIT);
        let z = b.named_gate("z", GateKind::Not, [y], Delay::UNIT);
        b.define(x, GateKind::Buf, [z], Delay::UNIT);
        b.output("o", z);
        let report = check_build(b).unwrap_err();
        let d = report.with_code(Code::COMBINATIONAL_CYCLE).next().unwrap();
        assert_eq!(d.severity, Severity::Error);
        // The three gates on the loop are all sites, with names in the text.
        assert_eq!(d.sites.len(), 3);
        for g in [x, y, z] {
            assert!(d.sites.contains(&g), "missing {g}");
        }
        for name in ["\"x\"", "\"y\"", "\"z\""] {
            assert!(d.message.contains(name), "message {:?} lacks {name}", d.message);
        }
    }

    #[test]
    fn duplicate_name_lists_every_holder() {
        let mut b = CircuitBuilder::new("dups");
        let a = b.input("n");
        b.named_gate("n", GateKind::Buf, [a], Delay::UNIT);
        b.named_gate("n", GateKind::Not, [a], Delay::UNIT);
        let report = check_build(b).unwrap_err();
        let d = report.with_code(Code::DUPLICATE_NAME).next().unwrap();
        assert_eq!(d.sites, vec![GateId::new(0), GateId::new(1), GateId::new(2)]);
    }

    #[test]
    fn valid_builder_passes_through() {
        let mut b = CircuitBuilder::new("ok");
        let a = b.input("a");
        let g = b.gate(GateKind::Not, [a], Delay::UNIT);
        b.output("y", g);
        let c = check_build(b).unwrap();
        assert_eq!(c.len(), 2);
    }
}
