//! Parallel-performance passes: fanout hotspots, shape imbalance and
//! zero-delay feedback loops.

use parsim_netlist::{Delay, GateId};

use crate::context::LintContext;
use crate::diagnostic::{Code, Diagnostic, Severity};
use crate::linter::LintPass;

/// Flags nets whose fanout exceeds a threshold.
///
/// Every output event on such a net becomes `fanout` messages in the
/// event-driven kernels — the classic event-storm amplifier. Clock and
/// latch-enable pins are exempt: a clock tree legitimately reaches every
/// sequential element, and the kernels treat clock distribution separately.
#[derive(Debug, Clone, Copy)]
pub struct FanoutHotspot {
    /// Smallest effective (non-clock) fanout that triggers the lint.
    pub threshold: usize,
}

impl Default for FanoutHotspot {
    fn default() -> Self {
        FanoutHotspot { threshold: 32 }
    }
}

impl LintPass for FanoutHotspot {
    fn name(&self) -> &'static str {
        "fanout-hotspot"
    }

    fn default_severity(&self) -> Severity {
        Severity::Warning
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let c = ctx.circuit();
        for id in c.ids() {
            // Effective fanout: skip sinks reading on pin 0 of a sequential
            // element (the DFF clock / latch enable pin).
            let effective = c
                .fanout(id)
                .iter()
                .filter(|e| !(c.kind(e.gate).is_sequential() && e.pin == 0))
                .count();
            if effective >= self.threshold {
                out.push(
                    Diagnostic::new(
                        Code::FANOUT_HOTSPOT,
                        self.default_severity(),
                        format!(
                            "net {} fans out to {effective} gate(s) (threshold {})",
                            ctx.name_of(id),
                            self.threshold,
                        ),
                    )
                    .with_site(id)
                    .with_help(
                        "buffer the net as a tree, or expect event storms in event-driven runs",
                    ),
                );
            }
        }
    }
}

/// Flags circuits that are much deeper than they are wide.
///
/// The mean number of gates per topological level bounds the parallelism any
/// §IV kernel can extract: a deep, narrow circuit serializes on its critical
/// path no matter how it is partitioned.
#[derive(Debug, Clone, Copy)]
pub struct ShapeImbalance {
    /// Depth below which the lint never fires (small circuits are exempt).
    pub min_depth: u32,
    /// Fires when the mean gates-per-level falls below this.
    pub min_mean_width: f64,
}

impl Default for ShapeImbalance {
    fn default() -> Self {
        ShapeImbalance { min_depth: 24, min_mean_width: 3.0 }
    }
}

impl LintPass for ShapeImbalance {
    fn name(&self) -> &'static str {
        "shape-imbalance"
    }

    fn default_severity(&self) -> Severity {
        Severity::Note
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let lv = ctx.levels();
        let depth = lv.depth();
        if depth < self.min_depth {
            return;
        }
        let c = ctx.circuit();
        let interior = c.ids().filter(|&id| lv.level(id) > 0).count();
        let mean_width = interior as f64 / f64::from(depth);
        if mean_width >= self.min_mean_width {
            return;
        }
        // Anchor the finding at the deepest gates — the end of the critical
        // path that caps parallelism.
        let deepest: Vec<GateId> = c.ids().filter(|&id| lv.level(id) == depth).collect();
        out.push(
            Diagnostic::new(
                Code::SHAPE_IMBALANCE,
                self.default_severity(),
                format!(
                    "circuit is deep and narrow: depth {depth}, mean width {mean_width:.1} \
                     gates/level (threshold {:.1})",
                    self.min_mean_width,
                ),
            )
            .with_sites(deepest)
            .with_help("expect limited speedup: available parallelism is bounded by level width"),
        );
    }
}

/// Flags feedback loops whose total propagation delay is zero.
///
/// Construction guarantees every loop passes through a flip-flop or latch,
/// but if every element on the loop has zero delay, a transparent latch can
/// re-excite the loop within a single simulation instant — livelocking
/// event-driven kernels and breaking the lookahead assumption of the
/// conservative ones.
#[derive(Debug, Clone, Copy, Default)]
pub struct ZeroDelayLoop;

impl LintPass for ZeroDelayLoop {
    fn name(&self) -> &'static str {
        "zero-delay-loop"
    }

    fn default_severity(&self) -> Severity {
        Severity::Warning
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let c = ctx.circuit();
        let n = c.len();
        // Restrict to the zero-delay subgraph, keeping *all* edges —
        // including edges into sequential elements, which is exactly where
        // legal feedback lives.
        let in_sub: Vec<bool> = c.ids().map(|id| c.delay(id) == Delay::ZERO).collect();
        let mut indegree = vec![0usize; n];
        for id in c.ids() {
            if in_sub[id.index()] {
                indegree[id.index()] = c.fanin(id).iter().filter(|f| in_sub[f.index()]).count();
            }
        }
        // Kahn: peel nodes with no remaining zero-delay predecessors.
        let mut ready: Vec<usize> = (0..n).filter(|&i| in_sub[i] && indegree[i] == 0).collect();
        let mut remaining = in_sub.iter().filter(|&&s| s).count();
        while let Some(i) = ready.pop() {
            remaining -= 1;
            for e in c.fanout(GateId::new(i)) {
                let j = e.gate.index();
                if in_sub[j] {
                    indegree[j] -= 1;
                    if indegree[j] == 0 {
                        ready.push(j);
                    }
                }
            }
        }
        if remaining == 0 {
            return;
        }
        // Extract disjoint cycles from the leftover nodes.
        let mut on_reported = vec![false; n];
        for start in 0..n {
            if indegree[start] == 0 || !in_sub[start] || on_reported[start] {
                continue;
            }
            let mut seen = vec![usize::MAX; n];
            let mut path = Vec::new();
            let mut cur = start;
            let cycle: Vec<usize> = loop {
                if on_reported[cur] {
                    break Vec::new(); // ran into an already-reported loop
                }
                if seen[cur] != usize::MAX {
                    break path[seen[cur]..].to_vec();
                }
                seen[cur] = path.len();
                path.push(cur);
                cur = c
                    .fanin(GateId::new(cur))
                    .iter()
                    .map(|f| f.index())
                    .find(|&f| in_sub[f] && indegree[f] > 0)
                    .expect("unresolved zero-delay node must have an unresolved fanin");
            };
            if cycle.is_empty() {
                continue;
            }
            for &i in &cycle {
                on_reported[i] = true;
            }
            let sites: Vec<GateId> = cycle.iter().map(|&i| GateId::new(i)).collect();
            let names: Vec<String> = sites.iter().map(|&id| ctx.name_of(id)).collect();
            out.push(
                Diagnostic::new(
                    Code::ZERO_DELAY_LOOP,
                    self.default_severity(),
                    format!("feedback loop with zero total delay: {}", names.join(" -> ")),
                )
                .with_sites(sites)
                .with_help("give at least one element on the loop a nonzero delay"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim_logic::GateKind;
    use parsim_netlist::{bench, Circuit, CircuitBuilder};

    fn run_pass(pass: &dyn LintPass, c: &Circuit) -> Vec<Diagnostic> {
        let ctx = LintContext::new(c);
        let mut out = Vec::new();
        pass.run(&ctx, &mut out);
        out
    }

    #[test]
    fn c17_is_clean_under_performance_passes() {
        let c = bench::c17();
        for pass in
            [&FanoutHotspot::default() as &dyn LintPass, &ShapeImbalance::default(), &ZeroDelayLoop]
        {
            assert!(run_pass(pass, &c).is_empty(), "pass {} fired on c17", pass.name());
        }
    }

    #[test]
    fn hotspot_counts_data_pins_only() {
        let mut b = CircuitBuilder::new("t");
        let clk = b.input("clk");
        let d = b.input("d");
        // clk drives 40 DFF clock pins (exempt) and zero data pins.
        let mut qs = Vec::new();
        for _ in 0..40 {
            qs.push(b.gate(GateKind::Dff, [clk, d], Delay::UNIT));
        }
        let y = b.gate(GateKind::Bus, qs, Delay::UNIT);
        b.output("y", y);
        let c = b.finish().unwrap();
        let diags = run_pass(&FanoutHotspot { threshold: 32 }, &c);
        // d (40 data pins) fires; clk (40 clock pins) does not.
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].sites, vec![c.inputs()[1]]);
        assert!(diags[0].message.contains("40"));
    }

    #[test]
    fn deep_narrow_chain_flagged() {
        let mut b = CircuitBuilder::new("chain");
        let mut cur = b.input("a");
        for i in 0..30 {
            cur = b.named_gate(format!("n{i}"), GateKind::Not, [cur], Delay::UNIT);
        }
        b.output("y", cur);
        let c = b.finish().unwrap();
        let diags = run_pass(&ShapeImbalance::default(), &c);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::SHAPE_IMBALANCE);
        assert_eq!(diags[0].sites, vec![c.outputs()[0]]);
    }

    #[test]
    fn zero_delay_latch_loop_flagged() {
        let mut b = CircuitBuilder::new("t");
        let en = b.input("en");
        let q = b.declare("q");
        let inv = b.named_gate("inv", GateKind::Not, [q], Delay::ZERO);
        b.define(q, GateKind::Latch, [en, inv], Delay::ZERO);
        b.output("q", q);
        let c = b.finish().unwrap();
        let diags = run_pass(&ZeroDelayLoop, &c);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::ZERO_DELAY_LOOP);
        assert!(diags[0].sites.contains(&q) && diags[0].sites.contains(&inv));
    }

    #[test]
    fn unit_delay_on_loop_silences() {
        let mut b = CircuitBuilder::new("t");
        let en = b.input("en");
        let q = b.declare("q");
        let inv = b.gate(GateKind::Not, [q], Delay::UNIT); // nonzero
        b.define(q, GateKind::Latch, [en, inv], Delay::ZERO);
        b.output("q", q);
        let c = b.finish().unwrap();
        assert!(run_pass(&ZeroDelayLoop, &c).is_empty());
    }
}
