//! Rendering collected diagnostics.

use std::fmt::Write as _;

use parsim_netlist::GateId;

use crate::diagnostic::{Diagnostic, Severity};

/// The result of a [`Linter::run`](crate::Linter::run): every diagnostic,
/// plus rendering helpers.
///
/// # Examples
///
/// ```
/// use parsim_lint::{LintContext, Linter};
/// use parsim_netlist::bench;
///
/// let c = bench::c17();
/// let report = Linter::with_default_passes().run(&LintContext::new(&c));
/// assert!(report.is_clean());
/// assert!(report.render_pretty().contains("clean"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintReport {
    circuit: String,
    diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    pub(crate) fn new(circuit: String, diagnostics: Vec<Diagnostic>) -> Self {
        LintReport { circuit, diagnostics }
    }

    /// Name of the analyzed circuit.
    pub fn circuit(&self) -> &str {
        &self.circuit
    }

    /// All diagnostics, most severe first.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Returns `true` if nothing at all was reported.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Returns `true` if any diagnostic is an error.
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// Number of diagnostics at exactly the given severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == severity).count()
    }

    /// The diagnostics carrying a particular code.
    pub fn with_code(&self, code: crate::Code) -> impl Iterator<Item = &Diagnostic> + '_ {
        self.diagnostics.iter().filter(move |d| d.code == code)
    }

    /// Every site mentioned by any diagnostic, deduplicated, in id order.
    ///
    /// Feed this to
    /// [`dot::write_dot_highlighted`](parsim_netlist::dot::write_dot_highlighted)
    /// to visualize the findings.
    pub fn all_sites(&self) -> Vec<GateId> {
        let mut sites: Vec<GateId> =
            self.diagnostics.iter().flat_map(|d| d.sites.iter().copied()).collect();
        sites.sort_unstable();
        sites.dedup();
        sites
    }

    /// Renders a human-readable multi-line report.
    ///
    /// ```text
    /// lint report for "adder": 1 error, 2 warnings, 0 notes
    /// error[combinational-cycle]: combinational cycle through "a" -> "b"
    ///   sites: g3, g4
    ///   help: break the loop with a flip-flop or latch
    /// ...
    /// ```
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "lint report for {:?}: {} error(s), {} warning(s), {} note(s){}",
            self.circuit,
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Note),
            if self.is_clean() { " — clean" } else { "" },
        );
        for d in &self.diagnostics {
            let _ = writeln!(out, "{d}");
            if !d.sites.is_empty() {
                let sites: Vec<String> = d.sites.iter().map(ToString::to_string).collect();
                let _ = writeln!(out, "  sites: {}", sites.join(", "));
            }
            if let Some(help) = &d.help {
                let _ = writeln!(out, "  help: {help}");
            }
        }
        out
    }

    /// Renders one tab-separated record per diagnostic, for scripting:
    ///
    /// ```text
    /// circuit<TAB>severity<TAB>code<TAB>site,site,...<TAB>message
    /// ```
    pub fn render_machine(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            let sites: Vec<String> = d.sites.iter().map(ToString::to_string).collect();
            let _ = writeln!(
                out,
                "{}\t{}\t{}\t{}\t{}",
                self.circuit,
                d.severity,
                d.code,
                sites.join(","),
                d.message
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Code;

    fn sample() -> LintReport {
        LintReport::new(
            "t".to_owned(),
            vec![
                Diagnostic::new(Code::COMBINATIONAL_CYCLE, Severity::Error, "cycle a -> b")
                    .with_sites([GateId::new(4), GateId::new(3)])
                    .with_help("break the loop"),
                Diagnostic::new(Code::DEAD_LOGIC, Severity::Warning, "gate g3 is dead")
                    .with_site(GateId::new(3)),
            ],
        )
    }

    #[test]
    fn counting_and_lookup() {
        let r = sample();
        assert!(!r.is_clean());
        assert!(r.has_errors());
        assert_eq!(r.count(Severity::Warning), 1);
        assert_eq!(r.with_code(Code::DEAD_LOGIC).count(), 1);
        assert_eq!(r.all_sites(), vec![GateId::new(3), GateId::new(4)]);
    }

    #[test]
    fn pretty_rendering_shows_sites_and_help() {
        let text = sample().render_pretty();
        assert!(text.starts_with("lint report for \"t\": 1 error(s), 1 warning(s), 0 note(s)"));
        assert!(text.contains("error[combinational-cycle]: cycle a -> b"));
        assert!(text.contains("  sites: g4, g3"));
        assert!(text.contains("  help: break the loop"));
    }

    #[test]
    fn machine_rendering_is_one_record_per_line() {
        let text = sample().render_machine();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], "t\terror\tcombinational-cycle\tg4,g3\tcycle a -> b");
        assert_eq!(lines[1].split('\t').count(), 5);
    }

    #[test]
    fn clean_report_renders_clean() {
        let r = LintReport::new("ok".to_owned(), Vec::new());
        assert!(r.render_pretty().contains("— clean"));
        assert_eq!(r.render_machine(), "");
    }
}
