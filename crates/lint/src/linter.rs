//! The pass trait and the pass registry.

use crate::context::LintContext;
use crate::diagnostic::{Diagnostic, Severity};
use crate::report::LintReport;

/// One static-analysis pass over a circuit (and optionally its partition).
///
/// A pass inspects the shared [`LintContext`] and appends any findings to
/// `out`. Passes must be deterministic: the same circuit must always produce
/// the same diagnostics in the same order, so reports are diffable.
pub trait LintPass {
    /// The pass's stable registry name (used for severity overrides and
    /// disabling; conventionally equal to the code it emits).
    fn name(&self) -> &'static str;

    /// The severity this pass emits unless overridden in the [`Linter`].
    fn default_severity(&self) -> Severity;

    /// Runs the pass, appending findings to `out`.
    ///
    /// Implementations should emit diagnostics at
    /// [`default_severity`](Self::default_severity); the [`Linter`] rewrites
    /// severities afterwards when the user configured an override.
    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>);
}

struct Registered {
    pass: Box<dyn LintPass>,
    severity: Option<Severity>,
    enabled: bool,
}

/// A configurable registry of [`LintPass`]es.
///
/// # Examples
///
/// ```
/// use parsim_lint::{Linter, LintContext, Severity};
/// use parsim_netlist::bench;
///
/// let c = bench::c17();
/// let mut linter = Linter::with_default_passes();
/// linter.set_severity("fanout-hotspot", Severity::Error);
/// let report = linter.run(&LintContext::new(&c));
/// assert!(report.is_clean()); // c17 is a clean little circuit
/// ```
pub struct Linter {
    passes: Vec<Registered>,
}

impl Linter {
    /// An empty linter; register passes with [`register`](Self::register).
    pub fn new() -> Self {
        Linter { passes: Vec::new() }
    }

    /// A linter with every built-in pass at its default severity.
    ///
    /// The partition-quality passes are included; they no-op unless the
    /// context carries a partition.
    pub fn with_default_passes() -> Self {
        use crate::passes;
        let mut linter = Linter::new();
        linter
            .register(passes::UnusedInput)
            .register(passes::DeadLogic)
            .register(passes::ConstCone)
            .register(passes::DuplicateGate)
            .register(passes::FanoutHotspot::default())
            .register(passes::ShapeImbalance::default())
            .register(passes::ZeroDelayLoop)
            .register(passes::LoadImbalance::default())
            .register(passes::HighCut::default());
        linter
    }

    /// Adds a pass at its default severity.
    pub fn register(&mut self, pass: impl LintPass + 'static) -> &mut Self {
        self.passes.push(Registered { pass: Box::new(pass), severity: None, enabled: true });
        self
    }

    /// Overrides the severity of every diagnostic a pass emits.
    ///
    /// Returns `true` if a pass with that name is registered.
    pub fn set_severity(&mut self, pass: &str, severity: Severity) -> bool {
        self.configure(pass, |r| r.severity = Some(severity))
    }

    /// Disables a pass entirely. Returns `true` if it was registered.
    pub fn disable(&mut self, pass: &str) -> bool {
        self.configure(pass, |r| r.enabled = false)
    }

    /// Re-enables a previously disabled pass. Returns `true` if registered.
    pub fn enable(&mut self, pass: &str) -> bool {
        self.configure(pass, |r| r.enabled = true)
    }

    fn configure(&mut self, pass: &str, f: impl FnOnce(&mut Registered)) -> bool {
        match self.passes.iter_mut().find(|r| r.pass.name() == pass) {
            Some(r) => {
                f(r);
                true
            }
            None => false,
        }
    }

    /// Names of all registered passes, in registration order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|r| r.pass.name()).collect()
    }

    /// Runs every enabled pass and collects the findings.
    ///
    /// Diagnostics are sorted most severe first, then by code, then by first
    /// site, so reports are stable across runs.
    pub fn run(&self, ctx: &LintContext<'_>) -> LintReport {
        let mut diagnostics = Vec::new();
        for r in &self.passes {
            if !r.enabled {
                continue;
            }
            let start = diagnostics.len();
            r.pass.run(ctx, &mut diagnostics);
            if let Some(severity) = r.severity {
                for d in &mut diagnostics[start..] {
                    d.severity = severity;
                }
            }
        }
        diagnostics.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then_with(|| a.code.cmp(&b.code))
                .then_with(|| a.sites.first().cmp(&b.sites.first()))
        });
        LintReport::new(ctx.circuit().name().to_owned(), diagnostics)
    }
}

impl Default for Linter {
    fn default() -> Self {
        Linter::with_default_passes()
    }
}

impl std::fmt::Debug for Linter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Linter").field("passes", &self.pass_names()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostic::Code;
    use parsim_netlist::bench;

    struct AlwaysFires;
    impl LintPass for AlwaysFires {
        fn name(&self) -> &'static str {
            "always-fires"
        }
        fn default_severity(&self) -> Severity {
            Severity::Note
        }
        fn run(&self, _ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
            out.push(Diagnostic::new(Code::DEAD_LOGIC, self.default_severity(), "synthetic"));
        }
    }

    #[test]
    fn register_run_and_override() {
        let c = bench::c17();
        let mut linter = Linter::new();
        linter.register(AlwaysFires);
        assert_eq!(linter.pass_names(), vec!["always-fires"]);

        let report = linter.run(&LintContext::new(&c));
        assert_eq!(report.diagnostics().len(), 1);
        assert_eq!(report.diagnostics()[0].severity, Severity::Note);

        assert!(linter.set_severity("always-fires", Severity::Error));
        let report = linter.run(&LintContext::new(&c));
        assert_eq!(report.diagnostics()[0].severity, Severity::Error);

        assert!(linter.disable("always-fires"));
        assert!(linter.run(&LintContext::new(&c)).is_clean());
        assert!(linter.enable("always-fires"));
        assert!(!linter.run(&LintContext::new(&c)).is_clean());

        assert!(!linter.set_severity("no-such-pass", Severity::Note));
    }

    #[test]
    fn default_passes_all_registered() {
        let linter = Linter::with_default_passes();
        let names = linter.pass_names();
        for expected in [
            "unused-input",
            "dead-logic",
            "const-cone",
            "duplicate-gate",
            "fanout-hotspot",
            "shape-imbalance",
            "zero-delay-loop",
            "load-imbalance",
            "high-cut",
        ] {
            assert!(names.contains(&expected), "missing pass {expected}");
        }
    }
}
