//! Static analysis and diagnostics for parsim netlists.
//!
//! This crate turns a [`parsim_netlist::Circuit`] (and optionally a
//! [`parsim_partition::Partition`]) into a set of [`Diagnostic`]s: structural
//! errors such as combinational cycles, logic-quality warnings such as dead
//! gates or constant cones, and performance advisories such as fanout
//! hotspots or poorly balanced partitions.
//!
//! The entry point is [`Linter`], a registry of [`LintPass`]es. Each pass
//! inspects the circuit through a shared [`LintContext`] and emits
//! diagnostics tagged with a stable [`Code`], a [`Severity`], and the gate
//! sites involved. Reports render either as human-readable text
//! ([`LintReport::render_pretty`]) or as machine-readable single-line records
//! ([`LintReport::render_machine`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod context;
mod diagnostic;
mod linter;
pub mod passes;
mod report;

pub use context::LintContext;
pub use diagnostic::{Code, Diagnostic, Severity};
pub use linter::{LintPass, Linter};
pub use passes::structural::{check_build, diagnose_build, diagnose_issue};
pub use report::LintReport;
