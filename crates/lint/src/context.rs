//! Shared analysis context handed to every lint pass.

use parsim_netlist::{Circuit, GateId, Levelization};
use parsim_partition::{GateWeights, Partition};

/// Everything a [`LintPass`](crate::LintPass) may inspect.
///
/// Owns the [`Levelization`] (computed once, shared by all passes) and
/// optionally borrows a [`Partition`] plus the [`GateWeights`] it was built
/// for, enabling the partition-quality passes.
///
/// # Examples
///
/// ```
/// use parsim_lint::LintContext;
/// use parsim_netlist::bench;
///
/// let c = bench::c17();
/// let ctx = LintContext::new(&c);
/// assert_eq!(ctx.levels().depth(), 3);
/// assert!(ctx.partition().is_none());
/// ```
#[derive(Debug)]
pub struct LintContext<'a> {
    circuit: &'a Circuit,
    levels: Levelization,
    partition: Option<&'a Partition>,
    weights: Option<&'a GateWeights>,
}

impl<'a> LintContext<'a> {
    /// Builds a context over a circuit alone (partition passes will skip).
    pub fn new(circuit: &'a Circuit) -> Self {
        LintContext { circuit, levels: Levelization::of(circuit), partition: None, weights: None }
    }

    /// Attaches a partition and the weights it was balanced against, enabling
    /// the partition-quality passes.
    ///
    /// # Panics
    ///
    /// Panics if the partition or the weights do not cover exactly the
    /// circuit's gates.
    #[must_use]
    pub fn with_partition(mut self, partition: &'a Partition, weights: &'a GateWeights) -> Self {
        assert_eq!(partition.len(), self.circuit.len(), "partition does not match circuit");
        assert_eq!(weights.len(), self.circuit.len(), "weights do not match circuit");
        self.partition = Some(partition);
        self.weights = Some(weights);
        self
    }

    /// The circuit under analysis.
    pub fn circuit(&self) -> &'a Circuit {
        self.circuit
    }

    /// Topological levels of the circuit, shared by all passes.
    pub fn levels(&self) -> &Levelization {
        &self.levels
    }

    /// The partition under analysis, if any.
    pub fn partition(&self) -> Option<&'a Partition> {
        self.partition
    }

    /// The gate weights the partition was balanced against, if any.
    pub fn weights(&self) -> Option<&'a GateWeights> {
        self.weights
    }

    /// A gate's name, or its id rendering when unnamed — for messages.
    pub fn name_of(&self, id: GateId) -> String {
        match self.circuit.gate(id).name() {
            Some(n) => format!("\"{n}\""),
            None => id.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim_netlist::bench;

    #[test]
    fn with_partition_enables_partition_data() {
        let c = bench::c17();
        let p = Partition::single_block(c.len());
        let w = GateWeights::uniform(c.len());
        let ctx = LintContext::new(&c).with_partition(&p, &w);
        assert_eq!(ctx.partition().unwrap().blocks(), 1);
        assert_eq!(ctx.weights().unwrap().total(), c.len() as f64);
    }

    #[test]
    #[should_panic(expected = "partition does not match circuit")]
    fn mismatched_partition_rejected() {
        let c = bench::c17();
        let p = Partition::single_block(3);
        let w = GateWeights::uniform(c.len());
        let _ = LintContext::new(&c).with_partition(&p, &w);
    }

    #[test]
    fn names_render_quoted_or_by_id() {
        let c = bench::c17();
        // Every c17 gate is named.
        assert!(ctx_name(&c, 0).starts_with('"'));
    }

    fn ctx_name(c: &Circuit, i: usize) -> String {
        LintContext::new(c).name_of(GateId::new(i))
    }
}
