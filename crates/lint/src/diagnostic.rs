//! Diagnostic records: codes, severities and sites.

use std::fmt::{self, Display};

use parsim_netlist::GateId;

/// How serious a diagnostic is.
///
/// Ordered from least to most severe, so `Severity::Error > Severity::Note`
/// and reports can be sorted or filtered by threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// An observation or optimization opportunity; the circuit is correct.
    Note,
    /// Likely a mistake or a parallel-performance hazard.
    Warning,
    /// The circuit is structurally unusable.
    Error,
}

impl Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// A stable, machine-readable diagnostic code.
///
/// Codes are kebab-case identifiers (`"dead-logic"`, `"fanout-hotspot"`)
/// that stay fixed across releases so tooling can match on them. All codes
/// emitted by this crate are associated constants on this type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Code(&'static str);

impl Code {
    /// The combinational network contains a cycle.
    pub const COMBINATIONAL_CYCLE: Code = Code("combinational-cycle");
    /// A gate was declared but never defined.
    pub const UNDEFINED_GATE: Code = Code("undefined-gate");
    /// A gate has an illegal number of inputs for its kind.
    pub const BAD_ARITY: Code = Code("bad-arity");
    /// A gate name is used more than once.
    pub const DUPLICATE_NAME: Code = Code("duplicate-name");
    /// The circuit contains no gates.
    pub const EMPTY_CIRCUIT: Code = Code("empty-circuit");
    /// A primary input drives nothing.
    pub const UNUSED_INPUT: Code = Code("unused-input");
    /// A gate has no path to any primary output.
    pub const DEAD_LOGIC: Code = Code("dead-logic");
    /// A cone of gates computes a compile-time constant.
    pub const CONST_CONE: Code = Code("const-cone");
    /// Two or more gates compute the identical function of identical nets.
    pub const DUPLICATE_GATE: Code = Code("duplicate-gate");
    /// A net fans out to an unusually large number of sinks.
    pub const FANOUT_HOTSPOT: Code = Code("fanout-hotspot");
    /// The circuit is much deeper than it is wide (little parallelism).
    pub const SHAPE_IMBALANCE: Code = Code("shape-imbalance");
    /// A feedback loop carries zero total propagation delay.
    pub const ZERO_DELAY_LOOP: Code = Code("zero-delay-loop");
    /// Partition block loads are badly imbalanced.
    pub const LOAD_IMBALANCE: Code = Code("load-imbalance");
    /// The partition cuts an excessive fraction of fanout edges.
    pub const HIGH_CUT: Code = Code("high-cut");

    /// The code as its stable string form.
    pub fn as_str(self) -> &'static str {
        self.0
    }
}

impl Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

/// One finding: what is wrong, how bad it is, and where.
///
/// # Examples
///
/// ```
/// use parsim_lint::{Code, Diagnostic, Severity};
/// use parsim_netlist::GateId;
///
/// let d = Diagnostic::new(Code::DEAD_LOGIC, Severity::Warning, "gate \"g3\" is dead")
///     .with_site(GateId::new(3))
///     .with_help("remove it or connect it to an output");
/// assert_eq!(d.code, Code::DEAD_LOGIC);
/// assert_eq!(d.sites, vec![GateId::new(3)]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable machine-readable code.
    pub code: Code,
    /// How serious the finding is.
    pub severity: Severity,
    /// Human-readable, circuit-specific description.
    pub message: String,
    /// The gates involved, most relevant first.
    pub sites: Vec<GateId>,
    /// Optional advice on how to address the finding.
    pub help: Option<String>,
}

impl Diagnostic {
    /// Creates a diagnostic with no sites and no help text.
    pub fn new(code: Code, severity: Severity, message: impl Into<String>) -> Self {
        Diagnostic { code, severity, message: message.into(), sites: Vec::new(), help: None }
    }

    /// Appends one site.
    #[must_use]
    pub fn with_site(mut self, site: GateId) -> Self {
        self.sites.push(site);
        self
    }

    /// Appends several sites.
    #[must_use]
    pub fn with_sites(mut self, sites: impl IntoIterator<Item = GateId>) -> Self {
        self.sites.extend(sites);
        self
    }

    /// Attaches help text.
    #[must_use]
    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }
}

impl Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Note);
        assert_eq!(Severity::Warning.to_string(), "warning");
    }

    #[test]
    fn codes_are_stable_strings() {
        assert_eq!(Code::DEAD_LOGIC.as_str(), "dead-logic");
        assert_eq!(Code::FANOUT_HOTSPOT.to_string(), "fanout-hotspot");
        assert_ne!(Code::CONST_CONE, Code::DUPLICATE_GATE);
    }

    #[test]
    fn diagnostic_builders_accumulate() {
        let d = Diagnostic::new(Code::UNUSED_INPUT, Severity::Warning, "input \"a\" unused")
            .with_site(GateId::new(0))
            .with_sites([GateId::new(1), GateId::new(2)])
            .with_help("drop the input");
        assert_eq!(d.sites.len(), 3);
        assert_eq!(d.help.as_deref(), Some("drop the input"));
        assert_eq!(d.to_string(), "warning[unused-input]: input \"a\" unused");
    }
}
