//! A deterministic virtual multiprocessor for parallel-simulation
//! performance studies.
//!
//! The paper's Figure 1 compares speedups measured on 1990s multiprocessors
//! (BBN GP1000, Intel iPSC, workstation networks). Those machines — and any
//! physical parallelism at all — are unavailable here, so this crate
//! substitutes a *cost model*: every parallel kernel charges its protocol
//! actions (gate evaluations, event-queue operations, message sends and
//! receives, barrier synchronizations, rollbacks, state saves, GVT rounds)
//! to per-processor clocks, and the **modeled makespan** (the largest
//! processor clock at the end) plays the role of parallel wall-clock time.
//! Speedup = modeled one-processor work ÷ modeled makespan.
//!
//! Why this preserves the paper's phenomena: every §V effect it reports is a
//! *protocol-level* property — null-message overhead is a message count,
//! barrier cost growth is a function of processor population, rollback
//! thrashing is wasted evaluations plus state-restore work, load imbalance
//! is an uneven distribution of charged work. All of those arise here from
//! the real event dynamics of the real circuit being simulated; only the
//! per-action price list is synthetic. The default [`MachineConfig`] makes
//! communication and synchronization expensive relative to a gate
//! evaluation, which is exactly the regime the paper describes ("due to the
//! fine grain nature of logic simulation, communications capability in the
//! parallel system is often the discriminating property").
//!
//! # Examples
//!
//! ```
//! use parsim_machine::{MachineConfig, VirtualMachine};
//!
//! let mut vm = VirtualMachine::new(MachineConfig::workstation_cluster(4));
//! vm.charge(0, 100);           // processor 0 computes
//! vm.charge(1, 40);
//! let ready = vm.send(0, 1);   // processor 0 sends a message to 1
//! vm.receive(1, ready);        // 1 waits for delivery, then pays recv cost
//! vm.barrier();                // all processors synchronize
//! assert!(vm.makespan() > 100);
//! assert_eq!(vm.clock(0), vm.clock(1)); // barrier aligned them
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::{self, Display};

use parsim_trace::{Probe, ProbeHandle, TraceKind, NO_LP};

/// The price list of the virtual multiprocessor, in abstract cost units
/// (think nanoseconds on a 1995-era machine).
///
/// All parallel kernels take a `MachineConfig`; sweeping its fields is how
/// the experiment harness studies sensitivity (e.g. barrier cost growth for
/// E9, message latency for E10).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineConfig {
    /// Number of processors (P).
    pub processors: usize,
    /// Cost of one gate evaluation.
    pub eval_cost: u64,
    /// Cost of one event-queue operation (schedule or retrieve).
    pub event_cost: u64,
    /// Sender-side CPU cost of an inter-processor message.
    pub send_cost: u64,
    /// Receiver-side CPU cost of an inter-processor message.
    pub recv_cost: u64,
    /// Network latency between send completion and receivability (not CPU).
    pub msg_latency: u64,
    /// Fixed component of a barrier synchronization.
    pub barrier_base: u64,
    /// Per-processor component of a barrier ("the time required to perform
    /// the barrier synchronization grows with processor population", §V).
    pub barrier_per_proc: u64,
    /// Fixed cost of initiating a rollback (coast-forward setup, queue
    /// surgery).
    pub rollback_cost: u64,
    /// Per-gate cost of a full-copy state save.
    pub copy_save_cost: u64,
    /// Per-touched-gate cost of an incremental state save.
    pub incremental_save_cost: u64,
    /// Per-processor cost of participating in one GVT round.
    pub gvt_cost: u64,
}

impl MachineConfig {
    /// A tightly coupled shared-memory multiprocessor (BBN-class): cheap
    /// messages, moderate barriers.
    pub fn shared_memory(processors: usize) -> Self {
        MachineConfig {
            processors,
            eval_cost: 8,
            event_cost: 2,
            send_cost: 4,
            recv_cost: 3,
            msg_latency: 6,
            barrier_base: 16,
            barrier_per_proc: 3,
            rollback_cost: 24,
            copy_save_cost: 1,
            incremental_save_cost: 1,
            gvt_cost: 12,
        }
    }

    /// A workstation network (LAN-class): expensive messages and barriers —
    /// the configuration whose communication bottleneck §II highlights.
    pub fn workstation_cluster(processors: usize) -> Self {
        MachineConfig {
            processors,
            eval_cost: 8,
            event_cost: 2,
            send_cost: 20,
            recv_cost: 16,
            msg_latency: 120,
            barrier_base: 80,
            barrier_per_proc: 12,
            rollback_cost: 24,
            copy_save_cost: 1,
            incremental_save_cost: 4,
            gvt_cost: 40,
        }
    }

    /// The cost of one barrier at this processor count.
    pub fn barrier_cost(&self) -> u64 {
        self.barrier_base + self.barrier_per_proc * self.processors as u64
    }
}

impl Default for MachineConfig {
    /// Eight shared-memory processors — the configuration of Figure 1.
    fn default() -> Self {
        MachineConfig::shared_memory(8)
    }
}

/// Aggregate counters of a virtual-machine run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub struct MachineStats {
    /// Messages sent between processors.
    pub messages: u64,
    /// Barriers executed.
    pub barriers: u64,
    /// Total CPU cost charged across all processors (busy time).
    pub busy: u64,
    /// Total idle time accumulated waiting for messages or barriers.
    pub idle: u64,
}

/// The virtual multiprocessor: per-processor clocks plus bookkeeping.
///
/// The machine is *passive*: kernels drive it by charging costs, sending
/// messages and invoking barriers. It is entirely deterministic.
#[derive(Debug)]
pub struct VirtualMachine {
    config: MachineConfig,
    clocks: Vec<u64>,
    stats: MachineStats,
    /// Trace recorder (disabled by default): emits `Charge` / `Idle` /
    /// `BarrierWait` spans positioned on the modeled cost-unit timeline.
    probe: ProbeHandle,
}

impl Clone for VirtualMachine {
    fn clone(&self) -> Self {
        VirtualMachine {
            config: self.config,
            clocks: self.clocks.clone(),
            stats: self.stats,
            probe: self.probe.fork(),
        }
    }
}

impl VirtualMachine {
    /// Creates a machine with all processor clocks at zero.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero processors.
    pub fn new(config: MachineConfig) -> Self {
        assert!(config.processors > 0, "virtual machine needs at least one processor");
        VirtualMachine {
            config,
            clocks: vec![0; config.processors],
            stats: MachineStats::default(),
            probe: Probe::disabled().handle(),
        }
    }

    /// Attaches a trace probe: from now on every [`charge`](Self::charge),
    /// message wait and barrier is recorded as a span on the modeled
    /// cost-unit timeline. Kernel-level instants (gate evaluations, message
    /// sends) share the same timeline through their own handles of the same
    /// probe.
    pub fn attach_probe(&mut self, probe: &Probe) {
        self.probe = probe.handle();
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Number of processors.
    pub fn processors(&self) -> usize {
        self.config.processors
    }

    /// The current clock of processor `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn clock(&self, p: usize) -> u64 {
        self.clocks[p]
    }

    /// Charges `cost` units of CPU work to processor `p`.
    pub fn charge(&mut self, p: usize, cost: u64) {
        if self.probe.enabled() && cost > 0 {
            self.probe.emit(self.clocks[p], 0, p as u32, NO_LP, TraceKind::Charge, cost);
        }
        self.clocks[p] += cost;
        self.stats.busy += cost;
    }

    /// Advances processor `p` to at least time `t` (idle waiting).
    pub fn wait_until(&mut self, p: usize, t: u64) {
        if t > self.clocks[p] {
            if self.probe.enabled() {
                self.probe.emit(
                    self.clocks[p],
                    0,
                    p as u32,
                    NO_LP,
                    TraceKind::Idle,
                    t - self.clocks[p],
                );
            }
            self.stats.idle += t - self.clocks[p];
            self.clocks[p] = t;
        }
    }

    /// Sends a message from `from` to `to`: charges the sender and returns
    /// the time at which the message becomes receivable at `to`.
    ///
    /// The receiver should later call [`receive`](Self::receive) with the
    /// returned ready time.
    pub fn send(&mut self, from: usize, _to: usize) -> u64 {
        self.charge(from, self.config.send_cost);
        self.stats.messages += 1;
        self.clocks[from] + self.config.msg_latency
    }

    /// Receives a message that became ready at `ready`: waits if it has not
    /// arrived yet, then charges the receive cost.
    pub fn receive(&mut self, p: usize, ready: u64) {
        self.wait_until(p, ready);
        self.charge(p, self.config.recv_cost);
    }

    /// Executes a barrier: every clock jumps to the common release time
    /// (the max clock plus the barrier cost).
    pub fn barrier(&mut self) {
        let release = self.makespan() + self.config.barrier_cost();
        for p in 0..self.clocks.len() {
            if release > self.clocks[p] {
                if self.probe.enabled() {
                    self.probe.emit(
                        self.clocks[p],
                        0,
                        p as u32,
                        NO_LP,
                        TraceKind::BarrierWait,
                        release - self.clocks[p],
                    );
                }
                self.stats.idle += release - self.clocks[p];
                self.clocks[p] = release;
            }
        }
        // The barrier cost itself is work, not idling; account it once.
        self.stats.busy += self.config.barrier_cost();
        self.stats.idle = self.stats.idle.saturating_sub(self.config.barrier_cost());
        self.stats.barriers += 1;
    }

    /// The largest processor clock — the modeled parallel wall-clock time.
    pub fn makespan(&self) -> u64 {
        self.clocks.iter().copied().max().unwrap_or(0)
    }

    /// Run statistics.
    pub fn stats(&self) -> MachineStats {
        self.stats
    }

    /// Utilization: busy time over `P × makespan`.
    pub fn utilization(&self) -> f64 {
        let denom = self.makespan() as f64 * self.processors() as f64;
        if denom == 0.0 {
            1.0
        } else {
            (self.stats.busy as f64 / denom).min(1.0)
        }
    }
}

impl Display for VirtualMachine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "P={} makespan={} util={:.2} msgs={} barriers={}",
            self.processors(),
            self.makespan(),
            self.utilization(),
            self.stats.messages,
            self.stats.barriers
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charging_advances_one_clock() {
        let mut vm = VirtualMachine::new(MachineConfig::shared_memory(2));
        vm.charge(0, 50);
        assert_eq!(vm.clock(0), 50);
        assert_eq!(vm.clock(1), 0);
        assert_eq!(vm.makespan(), 50);
        assert_eq!(vm.stats().busy, 50);
    }

    #[test]
    fn message_latency_delays_receiver() {
        let cfg = MachineConfig::shared_memory(2);
        let mut vm = VirtualMachine::new(cfg);
        vm.charge(0, 100);
        let ready = vm.send(0, 1);
        assert_eq!(ready, 100 + cfg.send_cost + cfg.msg_latency);
        vm.receive(1, ready);
        assert_eq!(vm.clock(1), ready + cfg.recv_cost);
        assert!(vm.stats().idle >= ready);
    }

    #[test]
    fn receive_after_arrival_does_not_wait() {
        let cfg = MachineConfig::shared_memory(2);
        let mut vm = VirtualMachine::new(cfg);
        let ready = vm.send(0, 1);
        vm.charge(1, 10_000); // receiver is busy long past arrival
        let before = vm.clock(1);
        vm.receive(1, ready);
        assert_eq!(vm.clock(1), before + cfg.recv_cost);
    }

    #[test]
    fn barrier_aligns_all_clocks() {
        let cfg = MachineConfig::shared_memory(4);
        let mut vm = VirtualMachine::new(cfg);
        vm.charge(0, 10);
        vm.charge(3, 90);
        vm.barrier();
        let release = 90 + cfg.barrier_cost();
        for p in 0..4 {
            assert_eq!(vm.clock(p), release);
        }
        assert_eq!(vm.stats().barriers, 1);
    }

    #[test]
    fn barrier_cost_grows_with_processors() {
        let small = MachineConfig::shared_memory(4).barrier_cost();
        let large = MachineConfig::shared_memory(64).barrier_cost();
        assert!(large > small);
    }

    #[test]
    fn utilization_bounds() {
        let mut vm = VirtualMachine::new(MachineConfig::shared_memory(2));
        vm.charge(0, 100);
        // One of two processors busy: utilization 0.5.
        assert!((vm.utilization() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn cluster_is_slower_to_communicate_than_shared_memory() {
        let sm = MachineConfig::shared_memory(8);
        let ws = MachineConfig::workstation_cluster(8);
        assert!(ws.msg_latency > 5 * sm.msg_latency);
        assert!(ws.barrier_cost() > sm.barrier_cost());
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processors_rejected() {
        VirtualMachine::new(MachineConfig { processors: 0, ..Default::default() });
    }

    #[test]
    fn probe_records_charge_idle_and_barrier_spans() {
        let cfg = MachineConfig::shared_memory(2);
        let probe = Probe::enabled();
        let mut vm = VirtualMachine::new(cfg);
        vm.attach_probe(&probe);
        vm.charge(0, 100);
        let ready = vm.send(0, 1);
        vm.receive(1, ready); // processor 1 idles until the message lands
        vm.barrier();
        drop(vm);
        let t = probe.take_trace();
        // Charges: explicit 100, send cost, recv cost.
        assert_eq!(t.count(TraceKind::Charge), 3);
        assert_eq!(t.count(TraceKind::Idle), 1);
        // Release time exceeds both clocks, so both processors wait.
        assert_eq!(t.count(TraceKind::BarrierWait), 2);
        // Spans are positioned on the cost-unit timeline: the first charge
        // starts at clock 0 and covers [0, 100).
        let first = t.of_kind(TraceKind::Charge).next().unwrap();
        assert_eq!((first.t, first.end()), (0, 100));
        // Busy/idle accounting matches the machine's own counters.
        assert_eq!(t.sum_arg(TraceKind::Charge), 100 + cfg.send_cost + cfg.recv_cost);
    }

    #[test]
    fn unprobed_machine_behaves_identically() {
        let cfg = MachineConfig::workstation_cluster(3);
        let run = |probe: Option<&Probe>| {
            let mut vm = VirtualMachine::new(cfg);
            if let Some(p) = probe {
                vm.attach_probe(p);
            }
            vm.charge(0, 10);
            let ready = vm.send(0, 2);
            vm.receive(2, ready);
            vm.barrier();
            (vm.makespan(), vm.stats())
        };
        let probe = Probe::enabled();
        assert_eq!(run(None), run(Some(&probe)));
    }
}
