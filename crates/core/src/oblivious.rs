//! The oblivious (compiled-mode) kernel.

use std::collections::BTreeMap;
use std::marker::PhantomData;

use parsim_event::VirtualTime;
use parsim_logic::{GateKind, LogicValue};
use parsim_netlist::Circuit;
use parsim_trace::{Probe, TraceKind, NO_LP};

use crate::{
    evaluate_gate, GateRuntime, Observe, SimOutcome, SimStats, Simulator, Stimulus, Waveform,
};

/// The §IV *oblivious* algorithm: no event queue at all.
///
/// "At every point in simulated time, every LP is evaluated, whether or not
/// its inputs have changed. This completely eliminates the need for an event
/// queue ... At low activity levels, redundant evaluations are an enormous
/// overhead. At higher activity levels, the elimination of the event queue
/// (and its associated overhead) can lead to a performance advantage."
///
/// The implementation is double-buffered: tick `t` values are a pure
/// function of tick `t − 1` values, which is exactly unit-delay semantics —
/// so for unit-delay circuits this kernel is bit-identical to the
/// event-driven reference (and is differential-tested against it).
/// Experiment E6 sweeps input activity to find the crossover the paper
/// describes.
///
/// # Panics
///
/// [`Simulator::run`] panics if any non-source gate has a delay other than
/// one tick: oblivious evaluation has no way to represent heterogeneous
/// delays.
///
/// # Examples
///
/// ```
/// use parsim_core::{ObliviousSimulator, SequentialSimulator, Simulator, Stimulus, Observe};
/// use parsim_event::VirtualTime;
/// use parsim_logic::Bit;
/// use parsim_netlist::bench;
///
/// let c = bench::c17();
/// let stim = Stimulus::random(3, 5);
/// let until = VirtualTime::new(60);
/// let obl = ObliviousSimulator::<Bit>::new().with_observe(Observe::AllNets);
/// let evd = SequentialSimulator::<Bit>::new().with_observe(Observe::AllNets);
/// let a = obl.run(&c, &stim, until);
/// let b = evd.run(&c, &stim, until);
/// assert_eq!(a.divergence_from(&b), None);
/// ```
#[derive(Debug, Clone)]
pub struct ObliviousSimulator<V> {
    observe: Observe,
    probe: Probe,
    compiled: bool,
    _values: PhantomData<V>,
}

impl<V: LogicValue> ObliviousSimulator<V> {
    /// Creates the kernel.
    pub fn new() -> Self {
        ObliviousSimulator {
            observe: Observe::Outputs,
            probe: Probe::disabled(),
            compiled: false,
            _values: PhantomData,
        }
    }

    /// Selects which nets to record waveforms for.
    pub fn with_observe(mut self, observe: Observe) -> Self {
        self.observe = observe;
        self
    }

    /// Lowers the circuit to [`parsim_compile`] bytecode once up front and
    /// evaluates each tick with `execute_full` instead of the generic
    /// `evaluate_gate` walk. Bit-identical to the interpreted default; the
    /// per-tick double buffering is unchanged.
    pub fn with_compiled(mut self) -> Self {
        self.compiled = true;
        self
    }

    /// Attaches a trace probe. The oblivious kernel evaluates every gate at
    /// every tick, so it records one batched `GateEval` per tick (`arg` =
    /// evaluation count) plus a `Dequeue` per applied input event — there is
    /// no event queue to report depths for.
    pub fn with_probe(mut self, probe: Probe) -> Self {
        self.probe = probe;
        self
    }
}

impl<V: LogicValue> Default for ObliviousSimulator<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: LogicValue> Simulator<V> for ObliviousSimulator<V> {
    fn name(&self) -> String {
        "oblivious".to_owned()
    }

    fn run(&self, circuit: &Circuit, stimulus: &Stimulus, until: VirtualTime) -> SimOutcome<V> {
        for (_, g) in circuit.iter() {
            assert!(
                g.kind().is_source() || g.delay().ticks() == 1,
                "oblivious simulation requires unit gate delays, found {} on a {}",
                g.delay(),
                g.kind()
            );
        }
        let n = circuit.len();
        let mut values = vec![V::ZERO; n];
        let mut runtime = vec![GateRuntime::<V>::default(); n];
        // SoA mirror of `runtime`, used only on the compiled path.
        let (mut q, mut prev_clk, mut last_driven) =
            (vec![V::ZERO; n], vec![V::ZERO; n], vec![V::ZERO; n]);
        let block = self.compiled.then(|| {
            let start = std::time::Instant::now();
            let b = parsim_compile::CompiledBlock::compile(circuit);
            (b, u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX))
        });
        let mut stats = SimStats::default();
        let mut waveforms: BTreeMap<_, Waveform<V>> = circuit
            .ids()
            .filter(|&id| self.observe.wants(circuit, id))
            .map(|id| (id, Waveform::new(V::ZERO)))
            .collect();

        let mut input_events = stimulus.events::<V>(circuit, until);
        // Constants behave like a t = 0 input event.
        for (id, g) in circuit.iter() {
            if g.kind() == GateKind::Const1 {
                input_events.push(parsim_event::Event::new(VirtualTime::ZERO, id, V::ONE));
            }
        }
        input_events.sort_by_key(|e| (e.time, e.net.index()));
        let mut next_input = 0usize;

        let evaluating: Vec<_> =
            circuit.iter().filter(|(_, g)| !g.kind().is_source()).map(|(id, _)| id).collect();

        // `pending[g]` is the output computed at the previous tick, to be
        // applied this tick (unit delay).
        let mut pending: Vec<Option<V>> = vec![None; n];
        let mut ph = self.probe.handle();
        if let Some((_, compile_ns)) = &block {
            if ph.enabled() {
                ph.emit(0, 0, 0, NO_LP, TraceKind::Compile, *compile_ns);
            }
        }

        let mut t = 0u64;
        loop {
            let now = VirtualTime::new(t);
            // Apply last tick's gate outputs.
            for &id in &evaluating {
                if let Some(v) = pending[id.index()].take() {
                    if values[id.index()] != v {
                        values[id.index()] = v;
                        if let Some(w) = waveforms.get_mut(&id) {
                            w.record(now, v);
                        }
                    }
                }
            }
            // Apply this tick's input events.
            while next_input < input_events.len() && input_events[next_input].time == now {
                let e = input_events[next_input];
                next_input += 1;
                stats.events_processed += 1;
                if ph.enabled() {
                    let remaining = (input_events.len() - next_input) as u64;
                    ph.emit(t, t, 0, e.net.index() as u32, TraceKind::Dequeue, remaining);
                }
                if values[e.net.index()] != e.value {
                    values[e.net.index()] = e.value;
                    if let Some(w) = waveforms.get_mut(&e.net) {
                        w.record(now, e.value);
                    }
                }
            }
            if now >= until {
                break;
            }
            // Evaluate every gate, obliviously.
            stats.gate_evaluations += evaluating.len() as u64;
            if let Some((b, _)) = &block {
                let slices = parsim_compile::GateSlices {
                    q: &mut q,
                    prev_clk: &mut prev_clk,
                    last_driven: &mut last_driven,
                };
                parsim_compile::execute_full(b, &values, slices, &mut |id, v, _delay| {
                    pending[id.index()] = Some(v);
                });
            } else {
                for &id in &evaluating {
                    pending[id.index()] = evaluate_gate(
                        circuit,
                        id,
                        &mut |f| values[f.index()],
                        &mut runtime[id.index()],
                    );
                }
            }
            if ph.enabled() {
                ph.emit(t, t, 0, NO_LP, TraceKind::GateEval, evaluating.len() as u64);
            }
            t += 1;
        }

        SimOutcome { final_values: values, waveforms, end_time: until, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SequentialSimulator;
    use parsim_logic::{Bit, Logic4};
    use parsim_netlist::{bench, generate, DelayModel};

    fn equivalent<V: LogicValue>(circuit: &Circuit, stim: &Stimulus, until: u64) {
        let a = ObliviousSimulator::<V>::new().with_observe(Observe::AllNets).run(
            circuit,
            stim,
            VirtualTime::new(until),
        );
        let b = SequentialSimulator::<V>::new().with_observe(Observe::AllNets).run(
            circuit,
            stim,
            VirtualTime::new(until),
        );
        if let Some(d) = a.divergence_from(&b) {
            panic!("oblivious diverged from sequential on {}: {d}", circuit.name());
        }
    }

    #[test]
    fn matches_event_driven_on_c17() {
        equivalent::<Bit>(&bench::c17(), &Stimulus::random(11, 7), 150);
        equivalent::<Logic4>(&bench::c17(), &Stimulus::counting(5), 170);
    }

    #[test]
    fn matches_event_driven_on_sequential_circuits() {
        let c = generate::lfsr(6, DelayModel::Unit);
        equivalent::<Bit>(&c, &Stimulus::quiet(100).with_clock(4), 200);
        let c = generate::counter(4, DelayModel::Unit);
        equivalent::<Bit>(&c, &Stimulus::quiet(100).with_clock(6), 240);
    }

    #[test]
    fn matches_event_driven_on_random_dags() {
        for seed in 0..5 {
            let c = generate::random_dag(&generate::RandomDagConfig {
                gates: 150,
                seq_fraction: 0.15,
                seed,
                ..Default::default()
            });
            equivalent::<Logic4>(&c, &Stimulus::random(seed, 9).with_clock(5), 120);
        }
    }

    #[test]
    fn compiled_matches_interpreted_bit_for_bit() {
        for seed in 0..4 {
            let c = generate::random_dag(&generate::RandomDagConfig {
                gates: 180,
                seq_fraction: 0.2,
                seed,
                ..Default::default()
            });
            let stim = Stimulus::random(seed, 9).with_clock(5);
            let until = VirtualTime::new(130);
            let a = ObliviousSimulator::<Logic4>::new()
                .with_compiled()
                .with_observe(Observe::AllNets)
                .run(&c, &stim, until);
            let b = ObliviousSimulator::<Logic4>::new()
                .with_observe(Observe::AllNets)
                .run(&c, &stim, until);
            if let Some(d) = a.divergence_from(&b) {
                panic!("compiled oblivious diverged from interpreted on {}: {d}", c.name());
            }
            assert_eq!(a.stats.gate_evaluations, b.stats.gate_evaluations);
        }
    }

    #[test]
    fn compiled_evaluation_count_is_gates_times_ticks() {
        let c = bench::c17(); // 6 evaluating gates
        let out = ObliviousSimulator::<Bit>::new().with_compiled().run(
            &c,
            &Stimulus::random_with_toggle(1, 10, 0.0),
            VirtualTime::new(100),
        );
        assert_eq!(out.stats.gate_evaluations, 6 * 100);
    }

    #[test]
    fn evaluation_count_is_gates_times_ticks() {
        let c = bench::c17(); // 6 evaluating gates
        let out = ObliviousSimulator::<Bit>::new().run(
            &c,
            &Stimulus::random_with_toggle(1, 10, 0.0),
            VirtualTime::new(100),
        );
        assert_eq!(out.stats.gate_evaluations, 6 * 100);
    }

    #[test]
    #[should_panic(expected = "unit gate delays")]
    fn rejects_non_unit_delays() {
        let c = generate::ripple_adder(2, DelayModel::PerKind);
        ObliviousSimulator::<Bit>::new().run(&c, &Stimulus::random(1, 5), VirtualTime::new(50));
    }
}
