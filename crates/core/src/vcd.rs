//! Value Change Dump (VCD) export.
//!
//! VCD (IEEE 1364) is the interchange format every waveform viewer reads;
//! a logic simulator without it is not usable for real design verification.
//! [`write_vcd`] renders the observed waveforms of a [`SimOutcome`] for any
//! value system (the four-state characters `0 1 x z` cover Logic4; IEEE
//! 1164 states outside that set degrade to `x`/`z` per common practice).

use std::fmt::Write as _;

use parsim_event::VirtualTime;
use parsim_logic::LogicValue;
use parsim_netlist::{Circuit, GateId};

use crate::SimOutcome;

/// Maps a logic value onto the VCD four-state alphabet.
fn vcd_char<V: LogicValue>(v: V) -> char {
    match v.to_bool() {
        Some(false) => '0',
        Some(true) => '1',
        None => {
            if v == V::HIGH_Z {
                'z'
            } else {
                'x'
            }
        }
    }
}

/// Produces a VCD identifier for the `n`-th variable (the printable-ASCII
/// base-94 code the format prescribes).
fn vcd_id(mut n: usize) -> String {
    let mut id = String::new();
    loop {
        id.push((b'!' + (n % 94) as u8) as char);
        n /= 94;
        if n == 0 {
            break;
        }
    }
    id
}

/// Renders the observed waveforms of `outcome` as VCD text.
///
/// Variables are named after their driving gates (synthetic `gN` names for
/// anonymous gates), scoped under the circuit name. The timescale is
/// nominal (`1ns` per tick).
///
/// # Examples
///
/// ```
/// use parsim_core::{write_vcd, Observe, SequentialSimulator, Simulator, Stimulus};
/// use parsim_event::VirtualTime;
/// use parsim_logic::Logic4;
/// use parsim_netlist::bench;
///
/// let c = bench::c17();
/// let out = SequentialSimulator::<Logic4>::new()
///     .with_observe(Observe::Outputs)
///     .run(&c, &Stimulus::counting(10), VirtualTime::new(100));
/// let vcd = write_vcd(&c, &out);
/// assert!(vcd.contains("$enddefinitions"));
/// assert!(vcd.contains("#0"));
/// ```
pub fn write_vcd<V: LogicValue>(circuit: &Circuit, outcome: &SimOutcome<V>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "$comment parsim dump of {} $end", circuit.name());
    let _ = writeln!(out, "$timescale 1ns $end");
    let _ = writeln!(out, "$scope module {} $end", sanitize(circuit.name()));

    let vars: Vec<(GateId, String)> =
        outcome.waveforms.keys().enumerate().map(|(i, &id)| (id, vcd_id(i))).collect();
    for (id, code) in &vars {
        let name = circuit.gate(*id).name().map_or_else(|| format!("g{}", id.index()), sanitize);
        let _ = writeln!(out, "$var wire 1 {code} {name} $end");
    }
    let _ = writeln!(out, "$upscope $end");
    let _ = writeln!(out, "$enddefinitions $end");

    // Merge all transitions into one time-ordered stream.
    let mut stream: Vec<(VirtualTime, usize, char)> = Vec::new();
    for (slot, (id, _)) in vars.iter().enumerate() {
        for &(t, v) in outcome.waveforms[id].transitions() {
            stream.push((t, slot, vcd_char(v)));
        }
    }
    stream.sort_by_key(|&(t, slot, _)| (t, slot));

    let mut current: Option<VirtualTime> = None;
    for (t, slot, ch) in stream {
        if current != Some(t) {
            let _ = writeln!(out, "#{}", t.ticks());
            current = Some(t);
        }
        let _ = writeln!(out, "{ch}{}", vars[slot].1);
    }
    let _ = writeln!(out, "#{}", outcome.end_time.ticks());
    out
}

/// Parses a VCD dump back into named Boolean value changes, suitable for
/// [`Stimulus::replay`](crate::Stimulus::replay).
///
/// Only `0`/`1` scalar changes are returned (`x`/`z` carry no Boolean value
/// to drive an input with); variables keep the names declared in the
/// `$var` section.
///
/// # Examples
///
/// ```
/// use parsim_core::{parse_vcd_changes, write_vcd, Observe, SequentialSimulator,
///     Simulator, Stimulus};
/// use parsim_event::VirtualTime;
/// use parsim_logic::Logic4;
/// use parsim_netlist::bench;
///
/// // Dump a run, replay its inputs: the replayed run is identical.
/// let c = bench::c17();
/// let sim = SequentialSimulator::<Logic4>::new().with_observe(Observe::AllNets);
/// let until = VirtualTime::new(120);
/// let original = sim.run(&c, &Stimulus::counting(10), until);
/// let replayed = sim.run(
///     &c,
///     &Stimulus::replay(parse_vcd_changes(&write_vcd(&c, &original))),
///     until,
/// );
/// assert_eq!(replayed.divergence_from(&original), None);
/// ```
pub fn parse_vcd_changes(text: &str) -> Vec<(u64, String, bool)> {
    let mut names: std::collections::HashMap<String, String> = std::collections::HashMap::new();
    let mut changes = Vec::new();
    let mut in_defs = true;
    let mut now = 0u64;
    for line in text.lines().map(str::trim).filter(|l| !l.is_empty()) {
        if in_defs {
            if line.starts_with("$var") {
                // $var wire 1 <id> <name> $end
                let fields: Vec<&str> = line.split_whitespace().collect();
                if fields.len() >= 5 {
                    names.insert(fields[3].to_owned(), fields[4].to_owned());
                }
            } else if line.starts_with("$enddefinitions") {
                in_defs = false;
            }
            continue;
        }
        if let Some(ts) = line.strip_prefix('#') {
            if let Ok(t) = ts.parse() {
                now = t;
            }
        } else if let Some(value) = match line.chars().next() {
            Some('0') => Some(false),
            Some('1') => Some(true),
            _ => None,
        } {
            let id = &line[1..];
            if let Some(name) = names.get(id) {
                changes.push((now, name.clone(), value));
            }
        }
    }
    changes
}

/// VCD identifiers must not contain whitespace; replace offenders.
fn sanitize(name: &str) -> String {
    name.chars().map(|c| if c.is_whitespace() { '_' } else { c }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Observe, SequentialSimulator, Simulator, Stimulus};
    use parsim_logic::{Logic4, Std9};
    use parsim_netlist::bench;

    #[test]
    fn ids_are_printable_and_unique() {
        let ids: Vec<String> = (0..500).map(vcd_id).collect();
        let set: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(set.len(), ids.len());
        assert!(ids.iter().all(|id| id.chars().all(|c| ('!'..='~').contains(&c))));
        assert_eq!(vcd_id(0), "!");
        assert_eq!(vcd_id(94), "!\"");
    }

    #[test]
    fn four_state_mapping() {
        assert_eq!(vcd_char(Logic4::Zero), '0');
        assert_eq!(vcd_char(Logic4::One), '1');
        assert_eq!(vcd_char(Logic4::X), 'x');
        assert_eq!(vcd_char(Logic4::Z), 'z');
        assert_eq!(vcd_char(Std9::W), 'x');
        assert_eq!(vcd_char(Std9::H), '1');
        assert_eq!(vcd_char(Std9::L), '0');
        assert_eq!(vcd_char(Std9::Z), 'z');
    }

    #[test]
    fn dump_structure() {
        let c = bench::c17();
        let out = SequentialSimulator::<Logic4>::new().with_observe(Observe::Outputs).run(
            &c,
            &Stimulus::counting(10),
            VirtualTime::new(120),
        );
        let vcd = write_vcd(&c, &out);
        // Header pieces in order.
        let defs = vcd.find("$enddefinitions").expect("definitions section");
        assert!(vcd.find("$var wire 1").expect("var decls") < defs);
        // Two observed outputs → two vars.
        assert_eq!(vcd.matches("$var wire").count(), 2);
        // Timestamps strictly increase.
        let mut last = -1i64;
        for line in vcd.lines().filter(|l| l.starts_with('#')) {
            let t: i64 = line[1..].parse().expect("timestamp");
            assert!(t >= last, "timestamps must be non-decreasing");
            last = t;
        }
        // Initial values at #0.
        assert!(vcd.contains("#0\n"));
    }
}
