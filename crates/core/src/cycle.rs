//! Cycle-based (zero-delay, clock-accurate) simulation.

use std::collections::BTreeMap;
use std::marker::PhantomData;

use parsim_event::{Event, VirtualTime};
use parsim_logic::{eval_combinational, eval_dff, eval_latch, GateKind, LogicValue};
use parsim_netlist::{Circuit, GateId, Levelization};

use crate::{Observe, SimOutcome, SimStats, Simulator, Stimulus, Waveform};

/// A cycle-based simulator: gate delays are ignored and the combinational
/// network is evaluated to its fixpoint in levelized (rank) order at every
/// stimulus change; flip-flops update once per capturing edge.
///
/// This is the "compiled, cycle-based" style production verification flows
/// use when per-gate timing is irrelevant: one rank-ordered sweep per event
/// time instead of an event queue, trading timing fidelity for raw
/// throughput. It relates to the timed kernels by a precise contract: for a
/// circuit whose combinational depth fits within every stimulus interval
/// and clock phase, the *settled* value of every net at each stimulus time
/// (just before the next input change) equals the timed kernels' settled
/// value — which is what the differential tests check.
///
/// Waveforms record one transition per stimulus time (the settled value):
/// intermediate glitches, which the timed kernels expose, are definitionally
/// absent.
///
/// # Examples
///
/// ```
/// use parsim_core::{CycleSimulator, SequentialSimulator, Simulator, Stimulus};
/// use parsim_event::VirtualTime;
/// use parsim_logic::Bit;
/// use parsim_netlist::{generate, DelayModel};
///
/// // Counter, clock half-period 10 ≫ depth: cycle-based and event-driven
/// // agree on every settled state.
/// let c = generate::counter(4, DelayModel::Unit);
/// let stim = Stimulus::quiet(1000).with_clock(10);
/// let cycle = CycleSimulator::<Bit>::new().run(&c, &stim, VirtualTime::new(400));
/// let timed = SequentialSimulator::<Bit>::new().run(&c, &stim, VirtualTime::new(400));
/// assert_eq!(cycle.final_values, timed.final_values);
/// assert!(cycle.stats.gate_evaluations < timed.stats.events_scheduled * 100);
/// ```
#[derive(Debug, Clone)]
pub struct CycleSimulator<V> {
    observe: Observe,
    _values: PhantomData<V>,
}

impl<V: LogicValue> CycleSimulator<V> {
    /// Creates the kernel.
    pub fn new() -> Self {
        CycleSimulator { observe: Observe::Outputs, _values: PhantomData }
    }

    /// Selects which nets to record waveforms for.
    pub fn with_observe(mut self, observe: Observe) -> Self {
        self.observe = observe;
        self
    }
}

impl<V: LogicValue> Default for CycleSimulator<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: LogicValue> Simulator<V> for CycleSimulator<V> {
    fn name(&self) -> String {
        "cycle-based".to_owned()
    }

    fn run(&self, circuit: &Circuit, stimulus: &Stimulus, until: VirtualTime) -> SimOutcome<V> {
        let n = circuit.len();
        let lv = Levelization::of(circuit);
        let mut values = vec![V::ZERO; n];
        let mut stats = SimStats::default();
        let mut waveforms: BTreeMap<GateId, Waveform<V>> = circuit
            .ids()
            .filter(|&id| self.observe.wants(circuit, id))
            .map(|id| (id, Waveform::new(V::ZERO)))
            .collect();

        // Sequential elements: previous clock level for edge detection.
        let seq: Vec<GateId> = circuit.sequential_elements();
        let mut prev_clk: BTreeMap<GateId, V> = seq.iter().map(|&s| (s, V::ZERO)).collect();

        let mut input_events: Vec<Event<V>> = stimulus.events::<V>(circuit, until);
        for (id, g) in circuit.iter() {
            if g.kind() == GateKind::Const1 {
                input_events.push(Event::new(VirtualTime::ZERO, id, V::ONE));
            }
        }
        input_events.sort_by_key(|e| (e.time, e.net.index()));

        // Rank-ordered combinational settle + one synchronized sequential
        // update per stimulus time.
        let settle = |values: &mut Vec<V>,
                      prev_clk: &mut BTreeMap<GateId, V>,
                      stats: &mut SimStats| {
            // Sequential capture first: all flip-flops sample their inputs
            // (as settled at the previous time) simultaneously.
            let updates: Vec<(GateId, V)> = seq
                .iter()
                .map(|&s| {
                    let fanin = circuit.fanin(s);
                    let clk = values[fanin[0].index()];
                    let d = values[fanin[1].index()];
                    let q = values[s.index()];
                    let up = match circuit.kind(s) {
                        GateKind::Dff => eval_dff(prev_clk[&s], clk, d, q),
                        GateKind::Latch => eval_latch(clk, d, q),
                        _ => unreachable!("sequential_elements returns only DFFs and latches"),
                    };
                    (s, up.q)
                })
                .collect();
            for (&s, (_, q)) in seq.iter().zip(&updates) {
                let fanin_clk = circuit.fanin(s)[0];
                let clk_now = values[fanin_clk.index()];
                prev_clk.insert(s, clk_now);
                values[s.index()] = *q;
                stats.gate_evaluations += 1;
            }
            // Combinational fixpoint in one rank-ordered sweep.
            for &id in lv.order() {
                let kind = circuit.kind(id);
                if kind.is_source() || kind.is_sequential() {
                    continue;
                }
                let inputs: Vec<V> = circuit.fanin(id).iter().map(|&f| values[f.index()]).collect();
                values[id.index()] = eval_combinational(kind, &inputs);
                stats.gate_evaluations += 1;
            }
        };

        // The t = 0 settle always runs (like every kernel's initial
        // evaluation), even when no stimulus event lands at 0 — otherwise
        // the first clock edge would capture unsettled feedback logic.
        let mut i = 0usize;
        let mut old = values.clone();
        if input_events.first().is_none_or(|e| e.time > VirtualTime::ZERO) {
            settle(&mut values, &mut prev_clk, &mut stats);
            for (id, w) in waveforms.iter_mut() {
                if values[id.index()] != old[id.index()] {
                    w.record(VirtualTime::ZERO, values[id.index()]);
                }
            }
            old.clone_from(&values);
        }
        while i < input_events.len() {
            let now = input_events[i].time;
            while i < input_events.len() && input_events[i].time == now {
                let e = input_events[i];
                values[e.net.index()] = e.value;
                stats.events_processed += 1;
                i += 1;
            }
            settle(&mut values, &mut prev_clk, &mut stats);
            for (id, w) in waveforms.iter_mut() {
                if values[id.index()] != old[id.index()] {
                    w.record(now, values[id.index()]);
                }
            }
            old.clone_from(&values);
        }

        SimOutcome { final_values: values, waveforms, end_time: until, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SequentialSimulator;
    use parsim_logic::Bit;
    use parsim_netlist::{bench, generate, DelayModel};

    /// Settled-state agreement with the timed reference: final values match
    /// whenever every clock phase and stimulus interval exceeds the depth.
    fn check_settled<V: LogicValue>(c: &Circuit, stim: &Stimulus, until: u64) {
        let cycle = CycleSimulator::<V>::new().run(c, stim, VirtualTime::new(until));
        let timed = SequentialSimulator::<V>::new().run(c, stim, VirtualTime::new(until));
        assert_eq!(
            cycle.final_values,
            timed.final_values,
            "settled states diverged on {}",
            c.name()
        );
    }

    #[test]
    fn combinational_settles_like_event_driven() {
        check_settled::<Bit>(&bench::c17(), &Stimulus::counting(20), 650);
        let c = generate::ripple_adder(8, DelayModel::Unit);
        check_settled::<Bit>(&c, &Stimulus::random(3, 40), 800);
    }

    #[test]
    fn sequential_circuits_agree_at_clock_boundaries() {
        let c = generate::counter(6, DelayModel::Unit);
        check_settled::<Bit>(&c, &Stimulus::quiet(100_000).with_clock(12), 1000);
        let c = generate::lfsr(8, DelayModel::Unit);
        check_settled::<Bit>(&c, &Stimulus::quiet(100_000).with_clock(12), 800);
    }

    #[test]
    fn far_fewer_evaluations_than_oblivious() {
        let c = generate::counter(6, DelayModel::Unit);
        let stim = Stimulus::quiet(100_000).with_clock(12);
        let cycle = CycleSimulator::<Bit>::new().run(&c, &stim, VirtualTime::new(1200));
        let obl = crate::ObliviousSimulator::<Bit>::new().run(&c, &stim, VirtualTime::new(1200));
        assert!(
            cycle.stats.gate_evaluations * 5 < obl.stats.gate_evaluations,
            "cycle-based evaluates per stimulus change, not per tick: {} vs {}",
            cycle.stats.gate_evaluations,
            obl.stats.gate_evaluations
        );
    }

    #[test]
    fn waveforms_record_settled_values_only() {
        // s0 of an adder may glitch in the timed kernel; cycle-based
        // records only one transition per stimulus time.
        let c = generate::ripple_adder(6, DelayModel::Unit);
        let stim = Stimulus::random(9, 50);
        let out = CycleSimulator::<Bit>::new().with_observe(Observe::AllNets).run(
            &c,
            &stim,
            VirtualTime::new(500),
        );
        for w in out.waveforms.values() {
            let mut times: Vec<_> = w.transitions().iter().map(|&(t, _)| t.ticks()).collect();
            times.dedup();
            assert_eq!(times.len(), w.transitions().len(), "at most one transition per time");
            // All transitions at stimulus boundaries (multiples of 50).
            assert!(times.iter().all(|&t| t % 50 == 0));
        }
    }
}
