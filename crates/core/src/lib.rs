//! Core simulation semantics, reference kernels, stimulus and results.
//!
//! This crate defines everything the parallel kernels
//! (`parsim-sync`, `parsim-conservative`, `parsim-optimistic`) have in
//! common, plus the two §IV algorithms that need no synchronization at all:
//!
//! * [`evaluate_gate`] / [`GateRuntime`] — the *exact* gate evaluation
//!   semantics (apply all input changes at a timestamp, evaluate each
//!   affected gate once, schedule an output event only when the driven value
//!   changes). Every kernel routes through this one function, which is why
//!   differential testing across kernels is exact, not approximate.
//! * [`SequentialSimulator`] — the classic single-event-queue reference
//!   kernel; the oracle for all correctness tests, and the engine behind
//!   [`pre_simulate`] (§III pre-simulation load profiling).
//! * [`ObliviousSimulator`] — the §IV "oblivious" algorithm: no event queue,
//!   every gate evaluated at every tick.
//! * [`CycleSimulator`] — zero-delay, rank-ordered cycle-based simulation
//!   (the compiled-mode style used when per-gate timing is irrelevant).
//! * [`Stimulus`] — deterministic test-vector sources (random, counting,
//!   explicit, with square-wave clocks for sequential circuits).
//! * [`SimOutcome`] / [`SimStats`] / [`Waveform`] — results, protocol
//!   statistics and signal traces.
//! * [`Simulator`] — the object-safe trait the experiment harness sweeps
//!   over.
//!
//! # Examples
//!
//! ```
//! use parsim_core::{SequentialSimulator, Simulator, Stimulus};
//! use parsim_event::VirtualTime;
//! use parsim_logic::Logic4;
//! use parsim_netlist::bench;
//!
//! let c = bench::c17();
//! let stim = Stimulus::random(42, 10);
//! let sim = SequentialSimulator::<Logic4>::new();
//! let out = sim.run(&c, &stim, VirtualTime::new(200));
//! assert!(out.stats.events_processed > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cycle;
mod error;
mod eval;
pub mod fault;
mod lp;
mod oblivious;
mod outcome;
mod profile;
mod sequential;
mod simulator;
mod stimulus;
mod vcd;
mod waveform;

pub use cycle::CycleSimulator;
pub use error::{BudgetExhausted, RunBudget, SimError, WorkerDiagnostic};
pub use eval::{evaluate_gate, GateRuntime};
pub use lp::{LpSpec, LpTopology};
pub use oblivious::ObliviousSimulator;
pub use outcome::{SimOutcome, SimStats};
pub use profile::{pre_simulate, pre_simulate_fraction, ActivityProfile};
pub use sequential::{QueueKind, SequentialSimulator};
pub use simulator::{Observe, Simulator};
pub use stimulus::Stimulus;
pub use vcd::{parse_vcd_changes, write_vcd};
pub use waveform::Waveform;
