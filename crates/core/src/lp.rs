//! Logical-process topology shared by the asynchronous parallel kernels.

use parsim_netlist::{Circuit, Delay, GateId};

/// One logical process: a cluster of gates simulated as a unit.
///
/// "The system components ... are considered to be atomic elements that are
/// each encapsulated into a logical process (LP). Many implementations
/// combine more than one component into a single LP" (§II). The
/// conservative and optimistic kernels both run over this topology; the
/// *LP granularity* (gates per LP) is the tuning knob of experiment E7.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LpSpec {
    /// Gates evaluated by this LP, in ascending id order.
    pub gates: Vec<GateId>,
    /// LPs this one sends event messages to (sorted, deduplicated, never
    /// contains the LP itself).
    pub out_channels: Vec<usize>,
    /// LPs this one receives event messages from (sorted, deduplicated).
    pub in_channels: Vec<usize>,
    /// Conservative lookahead: the smallest delay of any *evaluating* gate
    /// in this LP that drives a net read by another LP (source gates never
    /// send runtime messages — their events are preloaded). An event
    /// entering the LP cannot produce an outgoing message sooner than this.
    /// [`Delay::ZERO`] only if the LP has no outgoing channels.
    pub lookahead: Delay,
}

/// The complete LP decomposition of a circuit.
///
/// Built from a per-gate block assignment (usually a
/// `parsim_partition::Partition`, possibly refined to more LPs than
/// processors for granularity studies).
///
/// # Examples
///
/// ```
/// use parsim_core::LpTopology;
/// use parsim_netlist::bench;
///
/// let c = bench::c17();
/// // Gates 0..5 on LP 0, rest on LP 1.
/// let assignment: Vec<usize> = (0..c.len()).map(|i| usize::from(i >= 6)).collect();
/// let topo = LpTopology::new(&c, assignment, 2);
/// assert_eq!(topo.lps().len(), 2);
/// assert_eq!(topo.lp_of(parsim_netlist::GateId::new(0)), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LpTopology {
    lp_of_gate: Vec<usize>,
    lps: Vec<LpSpec>,
    /// dest_lps[gate] = LPs owning at least one fanout gate of `gate`,
    /// sorted and deduplicated (may include the gate's own LP).
    dest_lps: Vec<Vec<usize>>,
}

impl LpTopology {
    /// Builds the topology from a per-gate LP assignment.
    ///
    /// # Panics
    ///
    /// Panics if `lp_of_gate` does not cover every gate or assigns a gate to
    /// an LP index `≥ n_lps`.
    pub fn new(circuit: &Circuit, lp_of_gate: Vec<usize>, n_lps: usize) -> Self {
        assert_eq!(lp_of_gate.len(), circuit.len(), "assignment must cover every gate");
        assert!(lp_of_gate.iter().all(|&l| l < n_lps), "LP index out of range");

        let mut gates: Vec<Vec<GateId>> = vec![Vec::new(); n_lps];
        for (i, &lp) in lp_of_gate.iter().enumerate() {
            gates[lp].push(GateId::new(i));
        }

        let mut dest_lps: Vec<Vec<usize>> = Vec::with_capacity(circuit.len());
        for id in circuit.ids() {
            let mut dests: Vec<usize> =
                circuit.fanout(id).iter().map(|e| lp_of_gate[e.gate.index()]).collect();
            dests.sort_unstable();
            dests.dedup();
            dest_lps.push(dests);
        }

        let mut out_channels: Vec<Vec<usize>> = vec![Vec::new(); n_lps];
        let mut in_channels: Vec<Vec<usize>> = vec![Vec::new(); n_lps];
        let mut lookahead: Vec<Option<Delay>> = vec![None; n_lps];
        for id in circuit.ids() {
            // Source gates (primary inputs, constants) never *evaluate*, so
            // they never send runtime messages: their events are known in
            // advance and preloaded at every reader. They therefore create
            // no channels and do not constrain lookahead.
            if circuit.kind(id).is_source() {
                continue;
            }
            let src = lp_of_gate[id.index()];
            for &dst in &dest_lps[id.index()] {
                if dst != src {
                    out_channels[src].push(dst);
                    in_channels[dst].push(src);
                    let d = circuit.delay(id);
                    lookahead[src] = Some(lookahead[src].map_or(d, |cur: Delay| cur.min(d)));
                }
            }
        }
        for list in out_channels.iter_mut().chain(in_channels.iter_mut()) {
            list.sort_unstable();
            list.dedup();
        }

        let lps = gates
            .into_iter()
            .zip(out_channels)
            .zip(in_channels)
            .zip(lookahead)
            .map(|(((gates, out_channels), in_channels), lookahead)| LpSpec {
                gates,
                out_channels,
                in_channels,
                lookahead: lookahead.unwrap_or(Delay::ZERO),
            })
            .collect();

        LpTopology { lp_of_gate, lps, dest_lps }
    }

    /// The LP a gate belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn lp_of(&self, id: GateId) -> usize {
        self.lp_of_gate[id.index()]
    }

    /// All LPs.
    pub fn lps(&self) -> &[LpSpec] {
        &self.lps
    }

    /// The LPs that must receive an event on the net driven by `id`
    /// (owners of its fanout gates; may include the driver's own LP).
    pub fn destinations(&self, id: GateId) -> &[usize] {
        &self.dest_lps[id.index()]
    }

    /// Splits each block of a coarse assignment into `factor` sub-LPs
    /// (round-robin within the block), producing `blocks × factor` LPs
    /// mapped `lp → lp / factor` onto processors (see
    /// [`Self::processor_of`]). The granularity knob of experiment E7.
    pub fn with_granularity(
        circuit: &Circuit,
        coarse: &[usize],
        blocks: usize,
        factor: usize,
    ) -> Self {
        assert!(factor >= 1, "granularity factor must be at least 1");
        let mut counter = vec![0usize; blocks];
        let fine: Vec<usize> = coarse
            .iter()
            .map(|&b| {
                let sub = counter[b] % factor;
                counter[b] += 1;
                b * factor + sub
            })
            .collect();
        Self::new(circuit, fine, blocks * factor)
    }

    /// The processor a given LP runs on when LPs outnumber processors
    /// (blocked mapping consistent with [`Self::with_granularity`]).
    pub fn processor_of(lp: usize, factor: usize) -> usize {
        lp / factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim_logic::GateKind;
    use parsim_netlist::{CircuitBuilder, DelayModel};

    /// in(0) -> a(1) -> b(2) -> out, split a|b across LPs.
    fn two_lp_chain() -> (Circuit, LpTopology) {
        let mut b = CircuitBuilder::new("chain");
        let i = b.input("in");
        let a = b.named_gate("a", GateKind::Not, [i], Delay::new(3));
        let o = b.named_gate("b", GateKind::Not, [a], Delay::new(5));
        b.output("o", o);
        let c = b.finish().unwrap();
        let topo = LpTopology::new(&c, vec![0, 0, 1], 2);
        (c, topo)
    }

    #[test]
    fn channels_follow_cut_edges() {
        let (_, topo) = two_lp_chain();
        assert_eq!(topo.lps()[0].out_channels, vec![1]);
        assert_eq!(topo.lps()[0].in_channels, Vec::<usize>::new());
        assert_eq!(topo.lps()[1].in_channels, vec![0]);
        assert_eq!(topo.lps()[1].out_channels, Vec::<usize>::new());
    }

    #[test]
    fn lookahead_is_min_boundary_delay() {
        let (_, topo) = two_lp_chain();
        // LP 0's only boundary-driving gate is `a` with delay 3.
        assert_eq!(topo.lps()[0].lookahead, Delay::new(3));
        // LP 1 sends nothing.
        assert_eq!(topo.lps()[1].lookahead, Delay::ZERO);
    }

    #[test]
    fn destinations_dedup_lps() {
        let c = parsim_netlist::generate::random_dag(&parsim_netlist::generate::RandomDagConfig {
            gates: 100,
            ..Default::default()
        });
        let assignment: Vec<usize> = (0..c.len()).map(|i| i % 4).collect();
        let topo = LpTopology::new(&c, assignment, 4);
        for id in c.ids() {
            let d = topo.destinations(id);
            let mut sorted = d.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(d, &sorted[..], "destinations must be sorted+deduped");
        }
    }

    #[test]
    fn granularity_splits_blocks() {
        let c = parsim_netlist::generate::mesh(6, 6, DelayModel::Unit);
        let coarse: Vec<usize> = (0..c.len()).map(|i| i % 2).collect();
        let topo = LpTopology::with_granularity(&c, &coarse, 2, 4);
        assert_eq!(topo.lps().len(), 8);
        // All gates of fine LP l came from coarse block l / 4.
        for id in c.ids() {
            assert_eq!(topo.lp_of(id) / 4, coarse[id.index()]);
        }
        let total: usize = topo.lps().iter().map(|l| l.gates.len()).sum();
        assert_eq!(total, c.len());
    }
}
