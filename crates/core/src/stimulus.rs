//! Deterministic test-vector sources.

use parsim_event::{Event, VirtualTime};
use parsim_logic::LogicValue;
use parsim_netlist::{Circuit, GateId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The pattern applied to non-clock primary inputs.
#[derive(Debug, Clone, PartialEq)]
enum Pattern {
    /// Every `interval` ticks, each input toggles with probability
    /// `toggle_prob` (the "random vectors" the paper notes ISCAS circuits
    /// are typically simulated with).
    Random { seed: u64, toggle_prob: f64 },
    /// Inputs count in binary: input `i` carries bit `i` of the step number.
    Counting,
    /// Explicit vectors, one per step, cycled if the run is longer.
    Explicit(Vec<Vec<bool>>),
    /// Named value changes replayed verbatim (e.g. parsed from a VCD dump);
    /// `(time, input name, value)`.
    Replay(Vec<(u64, String, bool)>),
    /// All inputs held at constant 0 (clock still runs if configured).
    Quiet,
}

/// A deterministic stimulus: input vectors applied on a fixed cadence, with
/// optional square-wave clocks.
///
/// Inputs named `clk` or `__clk` (the ISCAS-89 implicit clock) are treated
/// as clocks when a clock period is configured: they get a square wave
/// instead of pattern data, which is what sequential circuits need to
/// advance at all.
///
/// The stimulus is a pure function of its configuration and the circuit, so
/// every kernel sees the identical event list — the foundation of the
/// differential tests.
///
/// # Examples
///
/// ```
/// use parsim_core::Stimulus;
/// use parsim_event::VirtualTime;
/// use parsim_logic::Bit;
/// use parsim_netlist::bench;
///
/// let c = bench::c17();
/// let stim = Stimulus::random(7, 10);
/// let events = stim.events::<Bit>(&c, VirtualTime::new(100));
/// assert!(!events.is_empty());
/// // Deterministic:
/// assert_eq!(events, stim.events::<Bit>(&c, VirtualTime::new(100)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Stimulus {
    pattern: Pattern,
    interval: u64,
    clock_half_period: Option<u64>,
}

/// Input names treated as clocks.
const CLOCK_NAMES: &[&str] = &["clk", "__clk"];

impl Stimulus {
    /// Random vectors: every `interval` ticks each input toggles with
    /// probability ½.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn random(seed: u64, interval: u64) -> Self {
        Self::random_with_toggle(seed, interval, 0.5)
    }

    /// Random vectors with an explicit per-input toggle probability — the
    /// activity-level knob of experiment E6.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero or `toggle_prob` is outside `[0, 1]`.
    pub fn random_with_toggle(seed: u64, interval: u64, toggle_prob: f64) -> Self {
        assert!(interval > 0, "stimulus interval must be positive");
        assert!((0.0..=1.0).contains(&toggle_prob), "toggle probability must be in [0,1]");
        Stimulus {
            pattern: Pattern::Random { seed, toggle_prob },
            interval,
            clock_half_period: None,
        }
    }

    /// Counting vectors: input `i` carries bit `i` of the step counter.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn counting(interval: u64) -> Self {
        assert!(interval > 0, "stimulus interval must be positive");
        Stimulus { pattern: Pattern::Counting, interval, clock_half_period: None }
    }

    /// Explicit vectors (one `bool` per non-clock input, one vector per
    /// step), cycled if the run outlasts them.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero or `vectors` is empty.
    pub fn vectors(interval: u64, vectors: Vec<Vec<bool>>) -> Self {
        assert!(interval > 0, "stimulus interval must be positive");
        assert!(!vectors.is_empty(), "need at least one vector");
        Stimulus { pattern: Pattern::Explicit(vectors), interval, clock_half_period: None }
    }

    /// Replays named value changes verbatim — the testbench-replay
    /// workflow: dump one run's input activity (e.g. with
    /// [`write_vcd`](crate::write_vcd) observing all nets), parse it back
    /// ([`parse_vcd_changes`](crate::parse_vcd_changes)) and re-drive any
    /// kernel with it. Clock detection does not apply: the replay is the
    /// complete stimulus.
    ///
    /// Changes whose names do not match a primary input of the target
    /// circuit are ignored (a VCD dump usually contains internal nets too).
    pub fn replay(changes: Vec<(u64, String, bool)>) -> Self {
        Stimulus { pattern: Pattern::Replay(changes), interval: 1, clock_half_period: None }
    }

    /// Holds all non-clock inputs at 0; useful with
    /// [`with_clock`](Self::with_clock) for free-running sequential
    /// circuits such as LFSRs and counters.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn quiet(interval: u64) -> Self {
        assert!(interval > 0, "stimulus interval must be positive");
        Stimulus { pattern: Pattern::Quiet, interval, clock_half_period: None }
    }

    /// Adds a square-wave clock of the given half-period on every input
    /// named `clk` or `__clk`.
    ///
    /// # Panics
    ///
    /// Panics if `half_period` is zero.
    pub fn with_clock(mut self, half_period: u64) -> Self {
        assert!(half_period > 0, "clock half-period must be positive");
        self.clock_half_period = Some(half_period);
        self
    }

    /// The vector cadence in ticks.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Generates all input events with `time < until`, sorted by time.
    ///
    /// At `t = 0` every input is driven explicitly (clocks start low, i.e.
    /// no event, since nets initialize to zero); later steps only emit
    /// changes.
    pub fn events<V: LogicValue>(&self, circuit: &Circuit, until: VirtualTime) -> Vec<Event<V>> {
        if let Pattern::Replay(changes) = &self.pattern {
            let inputs: std::collections::HashMap<&str, GateId> = circuit
                .inputs()
                .iter()
                .filter_map(|&pi| circuit.gate(pi).name().map(|n| (n, pi)))
                .collect();
            let mut events: Vec<Event<V>> = changes
                .iter()
                .filter(|(t, _, _)| *t < until.ticks())
                .filter_map(|(t, name, v)| {
                    inputs
                        .get(name.as_str())
                        .map(|&id| Event::new(VirtualTime::new(*t), id, V::from_bool(*v)))
                })
                .collect();
            events.sort_by_key(|e| (e.time, e.net.index()));
            return events;
        }
        let clocks: Vec<GateId> = if self.clock_half_period.is_some() {
            circuit
                .inputs()
                .iter()
                .copied()
                .filter(|&pi| circuit.gate(pi).name().is_some_and(|n| CLOCK_NAMES.contains(&n)))
                .collect()
        } else {
            Vec::new()
        };
        let data_inputs: Vec<GateId> =
            circuit.inputs().iter().copied().filter(|pi| !clocks.contains(pi)).collect();

        let mut events: Vec<Event<V>> = Vec::new();

        // Clock edges.
        if let Some(half) = self.clock_half_period {
            let mut level = false;
            let mut t = half;
            while t < until.ticks() {
                level = !level;
                for &clk in &clocks {
                    events.push(Event::new(VirtualTime::new(t), clk, V::from_bool(level)));
                }
                t += half;
            }
        }

        // Data vectors.
        let mut prev: Vec<bool> = vec![false; data_inputs.len()];
        let mut step = 0u64;
        let mut t = 0u64;
        while t < until.ticks() {
            let vector = self.vector_at(step, &prev, data_inputs.len());
            for (i, (&input, &bit)) in data_inputs.iter().zip(&vector).enumerate() {
                if step == 0 || bit != prev[i] {
                    events.push(Event::new(VirtualTime::new(t), input, V::from_bool(bit)));
                }
            }
            prev = vector;
            step += 1;
            t += self.interval;
        }

        events.sort_by_key(|e| (e.time, e.net.index()));
        events
    }

    fn vector_at(&self, step: u64, prev: &[bool], n: usize) -> Vec<bool> {
        match &self.pattern {
            Pattern::Random { seed, toggle_prob } => {
                // Derive per-step randomness from the seed so the stimulus
                // is random-access (no dependence on generation order).
                let mut rng =
                    StdRng::seed_from_u64(seed ^ step.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                (0..n)
                    .map(|i| {
                        let flip = rng.random_bool(*toggle_prob);
                        if step == 0 {
                            flip
                        } else {
                            prev[i] ^ flip
                        }
                    })
                    .collect()
            }
            Pattern::Counting => (0..n).map(|i| step >> (i.min(63)) & 1 == 1).collect(),
            Pattern::Explicit(vectors) => {
                let v = &vectors[(step % vectors.len() as u64) as usize];
                (0..n).map(|i| v.get(i).copied().unwrap_or(false)).collect()
            }
            Pattern::Quiet => vec![false; n],
            Pattern::Replay(_) => unreachable!("replay stimulus bypasses vector generation"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim_logic::Bit;
    use parsim_netlist::{bench, generate, DelayModel};

    #[test]
    fn counting_matches_binary() {
        let c = bench::c17(); // 5 inputs
        let stim = Stimulus::counting(10);
        let events = stim.events::<Bit>(&c, VirtualTime::new(40));
        // Step 0 (t=0): all five inputs driven 0.
        let at0: Vec<_> = events.iter().filter(|e| e.time == VirtualTime::ZERO).collect();
        assert_eq!(at0.len(), 5);
        assert!(at0.iter().all(|e| e.value == Bit::Zero));
        // Step 1 (t=10): only bit 0 changes, to 1.
        let at10: Vec<_> = events.iter().filter(|e| e.time == VirtualTime::new(10)).collect();
        assert_eq!(at10.len(), 1);
        assert_eq!(at10[0].value, Bit::One);
        // Step 2 (t=20): bit0 1→0 and bit1 0→1.
        let at20: Vec<_> = events.iter().filter(|e| e.time == VirtualTime::new(20)).collect();
        assert_eq!(at20.len(), 2);
    }

    #[test]
    fn clock_square_wave() {
        let c = generate::lfsr(4, DelayModel::Unit);
        let stim = Stimulus::quiet(100).with_clock(5);
        let events = stim.events::<Bit>(&c, VirtualTime::new(21));
        let clk = c.find("clk").unwrap();
        let clk_events: Vec<_> = events.iter().filter(|e| e.net == clk).collect();
        // Edges at 5, 10, 15, 20: 1, 0, 1, 0.
        assert_eq!(clk_events.len(), 4);
        assert_eq!(clk_events[0].value, Bit::One);
        assert_eq!(clk_events[1].value, Bit::Zero);
    }

    #[test]
    fn zero_toggle_probability_is_quiet_after_t0() {
        let c = bench::c17();
        let stim = Stimulus::random_with_toggle(3, 10, 0.0);
        let events = stim.events::<Bit>(&c, VirtualTime::new(1000));
        assert!(events.iter().all(|e| e.time == VirtualTime::ZERO));
    }

    #[test]
    fn higher_toggle_probability_gives_more_events() {
        let c = bench::c17();
        let low = Stimulus::random_with_toggle(3, 10, 0.1)
            .events::<Bit>(&c, VirtualTime::new(5000))
            .len();
        let high = Stimulus::random_with_toggle(3, 10, 0.9)
            .events::<Bit>(&c, VirtualTime::new(5000))
            .len();
        assert!(high > 2 * low, "toggle knob inert: {low} vs {high}");
    }

    #[test]
    fn explicit_vectors_cycle() {
        let c = bench::c17();
        let stim = Stimulus::vectors(10, vec![vec![true; 5], vec![false; 5]]);
        let events = stim.events::<Bit>(&c, VirtualTime::new(40));
        // t=0 all ones, t=10 all zeros, t=20 all ones, t=30 all zeros.
        assert_eq!(events.iter().filter(|e| e.value == Bit::One).count(), 10);
        assert_eq!(events.len(), 20);
    }

    #[test]
    fn events_are_sorted_and_unique_per_net_time() {
        let c = generate::lfsr(8, DelayModel::Unit);
        let stim = Stimulus::random(1, 7).with_clock(3);
        let events = stim.events::<Bit>(&c, VirtualTime::new(500));
        let mut seen = std::collections::HashSet::new();
        let mut last = VirtualTime::ZERO;
        for e in &events {
            assert!(e.time >= last);
            last = e.time;
            assert!(seen.insert((e.time, e.net)), "duplicate event for {} at {}", e.net, e.time);
        }
    }
}
