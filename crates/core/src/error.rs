//! Structured failure reporting and run budgets.
//!
//! Long-running parallel simulations fail in routine, recoverable ways: a
//! worker thread panics mid-round, a protocol invariant trips, an injected
//! or real delivery fault corrupts a channel, or the run simply exhausts
//! its budget. [`SimError`] is the structured form of the *fatal* subset —
//! what a fallible kernel entry point returns instead of tearing the
//! process down — and [`RunBudget`] bounds a run so exhaustion degrades
//! gracefully (partial results flagged truncated) rather than erroring.

use std::fmt::{self, Display};
use std::time::Duration;

use parsim_event::VirtualTime;

/// Where in the run a worker failed: which worker, which LP it was
/// serving, how far it had advanced in virtual time, and the
/// synchronization round.
///
/// The LP and virtual time are *best-effort progress marks* updated by the
/// protocol as it works; a worker that fails before marking any progress
/// reports `None` for both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerDiagnostic {
    /// The worker (thread) that failed.
    pub worker: usize,
    /// The LP the worker last worked on, if it marked any.
    pub lp: Option<usize>,
    /// The virtual time the worker last reached, if it marked any.
    pub virtual_time: Option<VirtualTime>,
    /// The synchronization round the failure happened in (1-based).
    pub round: u64,
}

impl Display for WorkerDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "worker {} (round {}", self.worker, self.round)?;
        if let Some(lp) = self.lp {
            write!(f, ", lp {lp}")?;
        }
        if let Some(vt) = self.virtual_time {
            write!(f, ", vt {vt}")?;
        }
        write!(f, ")")
    }
}

/// A fatal simulation failure, carrying enough structure to diagnose which
/// worker failed, where it was, and why — without taking the process down.
///
/// Returned by the fallible kernel entry points (`Fabric::run` and the
/// threaded simulators' `try_run`). The infallible
/// [`Simulator::run`](crate::Simulator::run) wrappers panic with the
/// [`Display`] form.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A worker thread panicked. The panic was caught at the round
    /// boundary and converted into a barrier-safe abort, so no peer hangs;
    /// `also_failed` lists any other workers that failed in the same run
    /// (e.g. a second injected kill, or casualties of the abort).
    WorkerPanic {
        /// The first failing worker.
        diagnostic: WorkerDiagnostic,
        /// The panic payload, rendered to a string.
        message: String,
        /// Diagnostics of any other workers that also failed.
        also_failed: Vec<WorkerDiagnostic>,
    },
    /// The protocol coordinator aborted the run (a protocol invariant
    /// broke). Every worker observes this as an error — none returns
    /// partial results that could merge as if complete.
    ProtocolAbort {
        /// The round the abort was decided in (1-based).
        round: u64,
        /// The protocol's abort message.
        reason: String,
    },
    /// A message batch was lost, delayed past its delivery round, or
    /// duplicated (detected by the runtime's delivery accounting, e.g.
    /// under fault injection with recovery disabled) and the run cannot
    /// continue correctly.
    DeliveryFault {
        /// The round the violation was detected in (1-based).
        round: u64,
        /// Human-readable description of the violated deliveries.
        detail: String,
    },
    /// A shared lock was poisoned and the poisoned state could not be
    /// safely recovered. With the runtime's poison-tolerant locking this
    /// is rare — a poisoned guard is normally recovered and the original
    /// failure surfaced as [`SimError::WorkerPanic`] instead.
    LockPoisoned {
        /// Which lock was poisoned.
        what: String,
        /// Where the poisoning was observed.
        context: String,
    },
    /// A synchronization barrier timed out: some worker stopped
    /// participating without panicking (a hang, not a crash).
    BarrierTimeout {
        /// The worker whose wait timed out.
        worker: usize,
        /// The round the timeout happened in (1-based).
        round: u64,
        /// How long the worker waited.
        waited: Duration,
        /// The workers that never arrived at the barrier, with their
        /// best-effort progress marks — the hang's likely culprits. Empty
        /// only when the runtime could not attribute the stall.
        stalled: Vec<WorkerDiagnostic>,
    },
}

impl SimError {
    /// The synchronization round the failure happened in, when one applies.
    pub fn round(&self) -> Option<u64> {
        match self {
            SimError::WorkerPanic { diagnostic, .. } => Some(diagnostic.round),
            SimError::ProtocolAbort { round, .. }
            | SimError::DeliveryFault { round, .. }
            | SimError::BarrierTimeout { round, .. } => Some(*round),
            SimError::LockPoisoned { .. } => None,
        }
    }

    /// The first failing worker, when the failure is attributable to one.
    pub fn worker(&self) -> Option<usize> {
        match self {
            SimError::WorkerPanic { diagnostic, .. } => Some(diagnostic.worker),
            SimError::BarrierTimeout { worker, .. } => Some(*worker),
            _ => None,
        }
    }
}

impl Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::WorkerPanic { diagnostic, message, also_failed } => {
                write!(f, "{diagnostic} panicked: {message}")?;
                if !also_failed.is_empty() {
                    write!(f, "; also failed:")?;
                    for d in also_failed {
                        write!(f, " {d}")?;
                    }
                }
                Ok(())
            }
            SimError::ProtocolAbort { round, reason } => {
                write!(f, "protocol aborted at round {round}: {reason}")
            }
            SimError::DeliveryFault { round, detail } => {
                write!(f, "message delivery violated at round {round}: {detail}")
            }
            SimError::LockPoisoned { what, context } => {
                write!(f, "{what} lock poisoned ({context})")
            }
            SimError::BarrierTimeout { worker, round, waited, stalled } => {
                write!(
                    f,
                    "worker {worker} timed out after {waited:?} at the round-{round} barrier \
                     (a peer stopped participating)"
                )?;
                if !stalled.is_empty() {
                    write!(f, "; stalled:")?;
                    for d in stalled {
                        write!(f, " {d}")?;
                    }
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Resource bounds on one simulation run.
///
/// An exhausted budget is *graceful degradation*, not an error: the run
/// stops cleanly at the next synchronization round, merges whatever was
/// simulated so far, and flags the outcome's
/// [`SimStats::truncated`](crate::SimStats::truncated). The default budget
/// is unlimited.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunBudget {
    /// Stop after this many synchronization rounds.
    pub max_rounds: Option<u64>,
    /// Stop once the workers have processed (at least) this many events in
    /// total. Checked at round boundaries, so the overshoot is at most one
    /// round's worth of events.
    pub max_events: Option<u64>,
    /// Stop once this much host wall-clock time has elapsed. Checked at
    /// round boundaries; a round in flight always completes.
    pub deadline: Option<Duration>,
}

impl RunBudget {
    /// No bounds at all (the default).
    pub const UNLIMITED: RunBudget =
        RunBudget { max_rounds: None, max_events: None, deadline: None };

    /// Caps the synchronization-round count.
    pub fn with_max_rounds(mut self, rounds: u64) -> Self {
        self.max_rounds = Some(rounds);
        self
    }

    /// Caps the total processed-event count.
    pub fn with_max_events(mut self, events: u64) -> Self {
        self.max_events = Some(events);
        self
    }

    /// Caps the host wall-clock time.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// True when no bound is set.
    pub fn is_unlimited(&self) -> bool {
        *self == RunBudget::UNLIMITED
    }

    /// Which bound (if any) is exhausted by the given usage.
    pub fn exceeded_by(
        &self,
        rounds: u64,
        events: u64,
        elapsed: Duration,
    ) -> Option<BudgetExhausted> {
        if self.max_rounds.is_some_and(|m| rounds >= m) {
            Some(BudgetExhausted::Rounds)
        } else if self.max_events.is_some_and(|m| events >= m) {
            Some(BudgetExhausted::Events)
        } else if self.deadline.is_some_and(|d| elapsed >= d) {
            Some(BudgetExhausted::Deadline)
        } else {
            None
        }
    }
}

/// Which [`RunBudget`] bound stopped a truncated run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetExhausted {
    /// [`RunBudget::max_rounds`] was reached.
    Rounds,
    /// [`RunBudget::max_events`] was reached.
    Events,
    /// [`RunBudget::deadline`] passed.
    Deadline,
}

impl Display for BudgetExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BudgetExhausted::Rounds => "round budget",
            BudgetExhausted::Events => "event budget",
            BudgetExhausted::Deadline => "wall-clock deadline",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_the_diagnostics() {
        let e = SimError::WorkerPanic {
            diagnostic: WorkerDiagnostic {
                worker: 2,
                lp: Some(7),
                virtual_time: Some(VirtualTime::new(40)),
                round: 5,
            },
            message: "boom".into(),
            also_failed: vec![WorkerDiagnostic {
                worker: 3,
                lp: None,
                virtual_time: None,
                round: 5,
            }],
        };
        let s = e.to_string();
        assert!(s.contains("worker 2"), "{s}");
        assert!(s.contains("round 5"), "{s}");
        assert!(s.contains("lp 7"), "{s}");
        assert!(s.contains("boom"), "{s}");
        assert!(s.contains("worker 3"), "{s}");
        assert_eq!(e.round(), Some(5));
        assert_eq!(e.worker(), Some(2));
    }

    #[test]
    fn barrier_timeout_names_the_stalled_workers() {
        let e = SimError::BarrierTimeout {
            worker: 0,
            round: 4,
            waited: Duration::from_millis(250),
            stalled: vec![WorkerDiagnostic {
                worker: 3,
                lp: Some(9),
                virtual_time: Some(VirtualTime::new(120)),
                round: 4,
            }],
        };
        let s = e.to_string();
        assert!(s.contains("worker 0 timed out"), "{s}");
        assert!(s.contains("round-4 barrier"), "{s}");
        assert!(s.contains("stalled:"), "{s}");
        assert!(s.contains("worker 3"), "{s}");
        assert!(s.contains("lp 9"), "{s}");
        assert_eq!(e.round(), Some(4));
        assert_eq!(e.worker(), Some(0));
    }

    #[test]
    fn budget_exhaustion_order_is_rounds_events_deadline() {
        let b = RunBudget::default()
            .with_max_rounds(10)
            .with_max_events(100)
            .with_deadline(Duration::from_secs(1));
        assert!(!b.is_unlimited());
        assert_eq!(b.exceeded_by(9, 99, Duration::ZERO), None);
        assert_eq!(b.exceeded_by(10, 99, Duration::ZERO), Some(BudgetExhausted::Rounds));
        assert_eq!(b.exceeded_by(9, 100, Duration::ZERO), Some(BudgetExhausted::Events));
        assert_eq!(b.exceeded_by(9, 99, Duration::from_secs(2)), Some(BudgetExhausted::Deadline));
        assert!(RunBudget::UNLIMITED.exceeded_by(u64::MAX, u64::MAX, Duration::MAX).is_none());
        assert!(RunBudget::default().is_unlimited());
    }
}
