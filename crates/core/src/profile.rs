//! Pre-simulation activity profiling.

use parsim_event::VirtualTime;
use parsim_logic::LogicValue;
use parsim_netlist::{Circuit, GateId};

use crate::{Observe, SequentialSimulator, Stimulus};

/// Per-gate evaluation frequencies measured by a profiling run.
///
/// This is §III *pre-simulation*: "the simulation is run for a period of
/// time and the evaluation frequency of each gate is measured. This measured
/// evaluation frequency is then assumed to persist for the remainder of the
/// simulation execution." The counts feed
/// [`GateWeights::from_counts`](https://docs.rs/parsim-partition) to produce
/// activity-weighted partitions (experiment E8).
///
/// # Examples
///
/// ```
/// use parsim_core::{pre_simulate, Stimulus};
/// use parsim_event::VirtualTime;
/// use parsim_netlist::bench;
///
/// let c = bench::c17();
/// let profile = pre_simulate(&c, &Stimulus::random(5, 10), VirtualTime::new(500));
/// assert_eq!(profile.counts().len(), c.len());
/// assert!(profile.total() > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActivityProfile {
    counts: Vec<u64>,
    window: VirtualTime,
}

impl ActivityProfile {
    /// The per-gate evaluation counts, indexed by gate id.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Consumes the profile, returning the raw counts.
    pub fn into_counts(self) -> Vec<u64> {
        self.counts
    }

    /// The evaluation count of one gate.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn count(&self, id: GateId) -> u64 {
        self.counts[id.index()]
    }

    /// Total evaluations across all gates.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The simulated-time window the profile covers.
    pub fn window(&self) -> VirtualTime {
        self.window
    }

    /// Mean evaluations per gate per tick — the circuit's *activity level*
    /// (the knob experiment E6 studies).
    pub fn activity_level(&self, circuit: &Circuit) -> f64 {
        let evaluating = circuit.iter().filter(|(_, g)| !g.kind().is_source()).count() as f64;
        let ticks = self.window.ticks().max(1) as f64;
        self.total() as f64 / (evaluating * ticks).max(1.0)
    }
}

/// Runs the sequential reference kernel for `window` ticks and returns the
/// measured per-gate evaluation frequencies.
///
/// Uses two-valued logic: the activity *pattern* is what matters, and the
/// profile must be cheap relative to the main run.
pub fn pre_simulate(
    circuit: &Circuit,
    stimulus: &Stimulus,
    window: VirtualTime,
) -> ActivityProfile {
    let sim = SequentialSimulator::<parsim_logic::Bit>::new().with_observe(Observe::Nothing);
    let (_, counts) = sim.run_with_activity(circuit, stimulus, window);
    ActivityProfile { counts, window }
}

/// Convenience: profile with the same stimulus family the main run will use,
/// over a window of `fraction` of the main run length (clamped to at least
/// one stimulus interval).
pub fn pre_simulate_fraction<V: LogicValue>(
    circuit: &Circuit,
    stimulus: &Stimulus,
    until: VirtualTime,
    fraction: f64,
) -> ActivityProfile {
    let window = ((until.ticks() as f64 * fraction) as u64).max(stimulus.interval());
    pre_simulate(circuit, stimulus, VirtualTime::new(window))
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim_netlist::{generate, DelayModel};

    #[test]
    fn profile_reflects_activity_skew() {
        // A counter's low bits toggle far more often than its high bits, so
        // the low-bit XOR gates must evaluate more often.
        let c = generate::counter(8, DelayModel::Unit);
        let profile =
            pre_simulate(&c, &Stimulus::quiet(100_000).with_clock(4), VirtualTime::new(4000));
        // The DFFs themselves all evaluate on every clock edge; the skew
        // shows in their *data* logic (the toggle XOR gates), whose inputs
        // change once per 2 cycles at bit 0 but once per 128 at bit 7.
        let d0 = c.fanin(c.find("q0").unwrap())[1];
        let d7 = c.fanin(c.find("q7").unwrap())[1];
        assert!(
            profile.count(d0) > 4 * profile.count(d7).max(1),
            "bit-0 toggle logic ({}) should evaluate far more than bit-7 ({})",
            profile.count(d0),
            profile.count(d7)
        );
    }

    #[test]
    fn activity_level_scales_with_toggle_probability() {
        let c = generate::random_dag(&Default::default());
        let until = VirtualTime::new(2000);
        let lazy =
            pre_simulate(&c, &Stimulus::random_with_toggle(1, 10, 0.05), until).activity_level(&c);
        let busy =
            pre_simulate(&c, &Stimulus::random_with_toggle(1, 10, 0.95), until).activity_level(&c);
        assert!(busy > 3.0 * lazy, "activity knob inert: {lazy} vs {busy}");
    }

    #[test]
    fn fraction_window_clamps() {
        let c = parsim_netlist::bench::c17();
        let stim = Stimulus::random(1, 50);
        let p = pre_simulate_fraction::<parsim_logic::Bit>(&c, &stim, VirtualTime::new(10), 0.01);
        assert_eq!(p.window(), VirtualTime::new(50));
    }
}
