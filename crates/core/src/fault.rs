//! Serial stuck-at fault simulation.
//!
//! The paper's §II observes that *data parallelism* "is quite effective for
//! fault simulation, where a large number of independent input vectors need
//! to be simulated" — fault simulation being the other big simulation
//! workload besides design verification. This module provides the
//! fault-model substrate: stuck-at-0/1 fault enumeration, fault injection
//! by circuit transformation (the faulty net's driver is replaced by a
//! constant), and a serial fault-simulation campaign measuring test-vector
//! coverage. Each fault's simulation is independent, which is exactly the
//! embarrassing parallelism §II describes.

use std::fmt::{self, Display};

use parsim_event::VirtualTime;
use parsim_logic::{GateKind, LogicValue};
use parsim_netlist::{Circuit, CircuitBuilder, GateId};

use crate::{Observe, SequentialSimulator, Simulator, Stimulus};

/// A single stuck-at fault: the net driven by `net` is stuck at `value`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StuckAtFault {
    /// The faulty net (identified by its driver).
    pub net: GateId,
    /// `false` = stuck-at-0, `true` = stuck-at-1.
    pub value: bool,
}

impl Display for StuckAtFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} stuck-at-{}", self.net, u8::from(self.value))
    }
}

/// Enumerates the full single-stuck-at fault list: two faults per net that
/// has at least one reader or is a primary output.
pub fn enumerate_faults(circuit: &Circuit) -> Vec<StuckAtFault> {
    let mut faults = Vec::new();
    for id in circuit.ids() {
        if circuit.fanout(id).is_empty() && !circuit.outputs().contains(&id) {
            continue; // unobservable net
        }
        faults.push(StuckAtFault { net: id, value: false });
        faults.push(StuckAtFault { net: id, value: true });
    }
    faults
}

/// Builds the faulty version of a circuit: identical structure and
/// interface, except every reader of the faulty net (and any primary-output
/// reference to it) is rewired to a new constant driver. The original
/// driver stays in place — crucially, primary inputs keep their position,
/// so the same stimulus drives both machines.
///
/// # Examples
///
/// ```
/// use parsim_core::fault::{inject, StuckAtFault};
/// use parsim_netlist::bench;
///
/// let c = bench::c17();
/// let f = StuckAtFault { net: c.find("10").unwrap(), value: true };
/// let faulty = inject(&c, f);
/// assert_eq!(faulty.len(), c.len() + 1); // one extra constant gate
/// assert_eq!(faulty.inputs().len(), c.inputs().len());
/// ```
pub fn inject(circuit: &Circuit, fault: StuckAtFault) -> Circuit {
    let mut b = CircuitBuilder::new(format!("{}__{}", circuit.name(), fault));
    let mut ids = Vec::with_capacity(circuit.len());
    for (id, g) in circuit.iter() {
        let placeholder = match g.name() {
            Some(n) => b.declare(n.to_owned()),
            None => b.declare(format!("__anon{}", id.index())),
        };
        ids.push(placeholder);
    }
    let stuck = b.constant(fault.value);
    // Define primary inputs first, in the original declaration order, so
    // the faulty circuit's input list (and hence stimulus vector mapping)
    // matches the good machine exactly.
    let define = |b: &mut CircuitBuilder, id: GateId| {
        let g = circuit.gate(id);
        let fanin: Vec<GateId> = g
            .fanin()
            .iter()
            .map(|&f| if f == fault.net { stuck } else { ids[f.index()] })
            .collect();
        b.define(ids[id.index()], g.kind(), fanin, g.delay());
    };
    for &pi in circuit.inputs() {
        define(&mut b, pi);
    }
    for (id, g) in circuit.iter() {
        if g.kind() != GateKind::Input {
            define(&mut b, id);
        }
    }
    for &po in circuit.outputs() {
        let target = if po == fault.net { stuck } else { ids[po.index()] };
        let name = circuit.gate(po).name().map_or_else(|| po.to_string(), str::to_owned);
        b.output(format!("{name}__po"), target);
    }
    b.finish().expect("fault injection preserves structural validity")
}

/// The outcome of a fault-simulation campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultReport {
    /// All simulated faults, with detection status.
    pub detected: Vec<(StuckAtFault, bool)>,
}

impl FaultReport {
    /// Number of detected faults.
    pub fn detected_count(&self) -> usize {
        self.detected.iter().filter(|(_, d)| *d).count()
    }

    /// Fault coverage in `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        if self.detected.is_empty() {
            return 1.0;
        }
        self.detected_count() as f64 / self.detected.len() as f64
    }

    /// The faults the vector set missed.
    pub fn undetected(&self) -> Vec<StuckAtFault> {
        self.detected.iter().filter(|(_, d)| !*d).map(|(f, _)| *f).collect()
    }
}

impl Display for FaultReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} faults detected ({:.1}% coverage)",
            self.detected_count(),
            self.detected.len(),
            self.coverage() * 100.0
        )
    }
}

/// Runs a serial fault-simulation campaign: the good circuit and every
/// faulty variant are simulated against `stimulus`; a fault is *detected*
/// if any primary-output waveform differs from the good machine's.
///
/// Each fault simulation is independent — the §II data-parallel workload —
/// so a caller with real processors can shard `faults` freely. For
/// unit-delay circuits, `parsim-bitsim`'s `simulate_faults_packed` runs the
/// same campaign 64 faulty machines at a time and returns an identical
/// report.
pub fn simulate_faults<V: LogicValue>(
    circuit: &Circuit,
    faults: &[StuckAtFault],
    stimulus: &Stimulus,
    until: VirtualTime,
) -> FaultReport {
    let sim = SequentialSimulator::<V>::new().with_observe(Observe::Outputs);
    simulate_faults_with(&sim, circuit, faults, stimulus, until)
}

/// [`simulate_faults`] with a caller-chosen kernel: any [`Simulator`] can
/// drive the campaign, as all kernels commit identical histories. The
/// kernel should observe primary outputs (detection compares PO waveforms —
/// a kernel observing nothing detects nothing).
pub fn simulate_faults_with<V: LogicValue>(
    sim: &dyn Simulator<V>,
    circuit: &Circuit,
    faults: &[StuckAtFault],
    stimulus: &Stimulus,
    until: VirtualTime,
) -> FaultReport {
    let good = sim.run(circuit, stimulus, until);
    let good_waves: Vec<_> = circuit.outputs().iter().map(|po| &good.waveforms[po]).collect();

    let detected = faults
        .iter()
        .map(|&fault| {
            let faulty_circuit = inject(circuit, fault);
            let bad = sim.run(&faulty_circuit, stimulus, until);
            let differs = faulty_circuit
                .outputs()
                .iter()
                .zip(&good_waves)
                .any(|(&po, good_wave)| &&bad.waveforms[&po] != good_wave);
            (fault, differs)
        })
        .collect();
    FaultReport { detected }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim_logic::Bit;
    use parsim_netlist::{bench, generate, DelayModel};

    #[test]
    fn enumeration_counts() {
        let c = bench::c17();
        // All 11 nets are observable (5 inputs feed gates, 6 NANDs feed
        // gates or outputs) → 22 faults.
        assert_eq!(enumerate_faults(&c).len(), 22);
    }

    #[test]
    fn injection_rewires_readers() {
        let c = bench::c17();
        let net = c.find("11").unwrap();
        let faulty = inject(&c, StuckAtFault { net, value: true });
        // The driver survives untouched...
        let fnet = faulty.find("11").unwrap();
        assert_eq!(faulty.kind(fnet), GateKind::Nand);
        // ...but its readers (gates 16 and 19) now read a constant 1.
        for reader in ["16", "19"] {
            let r = faulty.find(reader).unwrap();
            let const_input = faulty.fanin(r).iter().find(|&&f| faulty.kind(f) == GateKind::Const1);
            assert!(const_input.is_some(), "{reader} not rewired");
        }
        assert_eq!(faulty.stats().gates_by_kind[&GateKind::Nand], 6);
        assert_eq!(faulty.inputs(), c.inputs(), "interface preserved");
    }

    #[test]
    fn exhaustive_vectors_reach_full_coverage_on_c17() {
        let c = bench::c17();
        // All 32 input combinations: every stuck-at fault in c17 is testable.
        let vectors: Vec<Vec<bool>> =
            (0u32..32).map(|p| (0..5).map(|i| p >> i & 1 == 1).collect()).collect();
        let stimulus = Stimulus::vectors(16, vectors);
        let faults = enumerate_faults(&c);
        let report = simulate_faults::<Bit>(&c, &faults, &stimulus, VirtualTime::new(32 * 16));
        assert_eq!(report.coverage(), 1.0, "undetected: {:?}", report.undetected());
    }

    #[test]
    fn single_vector_has_partial_coverage() {
        let c = bench::c17();
        let stimulus = Stimulus::vectors(16, vec![vec![false; 5]]);
        let faults = enumerate_faults(&c);
        let report = simulate_faults::<Bit>(&c, &faults, &stimulus, VirtualTime::new(64));
        assert!(report.coverage() > 0.0, "all-zero vector detects something");
        assert!(report.coverage() < 1.0, "one vector cannot catch everything");
        let shown = report.to_string();
        assert!(shown.contains("coverage"));
    }

    #[test]
    fn campaign_kernel_is_interchangeable() {
        let c = bench::c17();
        let stimulus = Stimulus::random(3, 8);
        let faults = enumerate_faults(&c);
        let until = VirtualTime::new(96);
        let serial = simulate_faults::<Bit>(&c, &faults, &stimulus, until);
        let oblivious = crate::ObliviousSimulator::<Bit>::new().with_observe(Observe::Outputs);
        let via_oblivious = simulate_faults_with(&oblivious, &c, &faults, &stimulus, until);
        assert_eq!(via_oblivious, serial);
    }

    #[test]
    fn faulty_sequential_circuit_simulates() {
        let c = generate::counter(4, DelayModel::Unit);
        let q0 = c.find("q0").unwrap();
        let faults = [StuckAtFault { net: q0, value: false }];
        let stimulus = Stimulus::quiet(100_000).with_clock(5);
        let report = simulate_faults::<Bit>(&c, &faults, &stimulus, VirtualTime::new(200));
        // A stuck low q0 kills the count sequence: detectable.
        assert_eq!(report.detected_count(), 1);
    }
}
