//! The sequential event-driven reference kernel.

use std::collections::BTreeMap;
use std::marker::PhantomData;

use parsim_event::{
    BinaryHeapQueue, CalendarQueue, Event, EventQueue, PairingHeapQueue, VirtualTime,
};
use parsim_logic::{GateKind, LogicValue};
use parsim_netlist::{Circuit, GateId};
use parsim_trace::{Probe, TraceKind};

use crate::{
    evaluate_gate, GateRuntime, Observe, SimOutcome, SimStats, Simulator, Stimulus, Waveform,
};

/// Which pending-event-set implementation the sequential kernel uses.
///
/// All three drain identically (deterministic `(time, net, sequence)`
/// ordering), so this is purely a performance choice — see the
/// `event_queue` criterion benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueKind {
    /// `std::collections::BinaryHeap` (the default).
    #[default]
    BinaryHeap,
    /// Brown calendar queue.
    Calendar,
    /// Pairing heap.
    PairingHeap,
}

/// The classic single-event-queue, event-driven logic simulator.
///
/// This is the reference ("oracle") kernel: every parallel kernel in the
/// workspace is differential-tested against it. It follows the two-phase
/// discipline all kernels share: pop *all* events carrying the current
/// timestamp, apply them to their nets, then evaluate each affected gate
/// exactly once (in ascending gate-id order) and schedule output events
/// `delay` ticks in the future.
///
/// # Examples
///
/// ```
/// use parsim_core::{SequentialSimulator, Simulator, Stimulus};
/// use parsim_event::VirtualTime;
/// use parsim_logic::Bit;
/// use parsim_netlist::{generate, DelayModel};
///
/// // A 4-bit counter counts clock edges.
/// let c = generate::counter(4, DelayModel::Unit);
/// let stim = Stimulus::quiet(100).with_clock(10);
/// let out = SequentialSimulator::<Bit>::new().run(&c, &stim, VirtualTime::new(205));
/// // 10 rising edges by t = 205 (at 10, 30, ..., 190) → count = 10 = 0b1010.
/// let bits: Vec<Bit> = out.output_values(&c);
/// assert_eq!(bits.iter().rev().map(|b| b.to_string()).collect::<String>(), "1010");
/// ```
#[derive(Debug, Clone)]
pub struct SequentialSimulator<V> {
    observe: Observe,
    queue: QueueKind,
    probe: Probe,
    _values: PhantomData<V>,
}

impl<V: LogicValue> SequentialSimulator<V> {
    /// Creates the kernel with default settings (binary-heap queue,
    /// primary-output waveforms).
    pub fn new() -> Self {
        SequentialSimulator {
            observe: Observe::Outputs,
            queue: QueueKind::BinaryHeap,
            probe: Probe::disabled(),
            _values: PhantomData,
        }
    }

    /// Attaches a trace probe. When enabled, the run records every gate
    /// evaluation and every queue operation (with queue depth) on a
    /// virtual-time-tick timeline, processor 0, LP = gate id. The default
    /// disabled probe costs one predictable branch per would-be record.
    pub fn with_probe(mut self, probe: Probe) -> Self {
        self.probe = probe;
        self
    }

    /// Selects which nets to record waveforms for.
    pub fn with_observe(mut self, observe: Observe) -> Self {
        self.observe = observe;
        self
    }

    /// Uses a calendar queue instead of the binary heap (identical results;
    /// different constants — see the event-queue benchmark).
    pub fn with_calendar_queue(self) -> Self {
        self.with_queue(QueueKind::Calendar)
    }

    /// Selects the pending-event-set implementation.
    pub fn with_queue(mut self, queue: QueueKind) -> Self {
        self.queue = queue;
        self
    }

    /// Runs the simulation and additionally returns the per-gate evaluation
    /// counts — the §III *pre-simulation* activity measurement.
    pub fn run_with_activity(
        &self,
        circuit: &Circuit,
        stimulus: &Stimulus,
        until: VirtualTime,
    ) -> (SimOutcome<V>, Vec<u64>) {
        assert!(
            circuit.min_gate_delay().ticks() >= 1,
            "simulation kernels require nonzero gate delays (once-per-timestamp invariant)"
        );
        let mut queue: Box<dyn EventQueue<V>> = match self.queue {
            QueueKind::BinaryHeap => Box::new(BinaryHeapQueue::new()),
            QueueKind::Calendar => Box::new(CalendarQueue::new()),
            QueueKind::PairingHeap => Box::new(PairingHeapQueue::new()),
        };
        let n = circuit.len();
        let mut values = vec![V::ZERO; n];
        let mut runtime = vec![GateRuntime::<V>::default(); n];
        let mut eval_counts = vec![0u64; n];
        let mut stats = SimStats::default();
        let mut waveforms: BTreeMap<GateId, Waveform<V>> = circuit
            .ids()
            .filter(|&id| self.observe.wants(circuit, id))
            .map(|id| (id, Waveform::new(V::ZERO)))
            .collect();

        let mut ph = self.probe.handle();

        // Initialization: stimulus events plus constant drivers.
        for e in stimulus.events::<V>(circuit, until) {
            let (due, net) = (e.time, e.net);
            queue.push(e);
            stats.events_scheduled += 1;
            if ph.enabled() {
                ph.emit(
                    0,
                    due.ticks(),
                    0,
                    net.index() as u32,
                    TraceKind::Enqueue,
                    queue.len() as u64,
                );
            }
        }
        for (id, g) in circuit.iter() {
            if g.kind() == GateKind::Const1 {
                queue.push(Event::new(VirtualTime::ZERO, id, V::ONE));
                stats.events_scheduled += 1;
                if ph.enabled() {
                    ph.emit(0, 0, 0, id.index() as u32, TraceKind::Enqueue, queue.len() as u64);
                }
            }
        }

        // Dirty-gate scratch: `stamp[g] == stamp_counter` means already
        // queued for evaluation this timestamp.
        let mut stamp = vec![u64::MAX; n];
        let mut stamp_counter = 0u64;
        let mut dirty: Vec<GateId> = Vec::new();

        let mut step = |now: VirtualTime,
                        initial: bool,
                        queue: &mut Box<dyn EventQueue<V>>,
                        values: &mut Vec<V>,
                        runtime: &mut Vec<GateRuntime<V>>,
                        stats: &mut SimStats,
                        waveforms: &mut BTreeMap<GateId, Waveform<V>>| {
            stamp_counter += 1;
            dirty.clear();

            // Phase 1: apply every event at `now`.
            while queue.peek_time() == Some(now) {
                let e = queue.pop().expect("peeked");
                stats.events_processed += 1;
                if ph.enabled() {
                    ph.emit(
                        now.ticks(),
                        now.ticks(),
                        0,
                        e.net.index() as u32,
                        TraceKind::Dequeue,
                        queue.len() as u64,
                    );
                }
                if values[e.net.index()] == e.value {
                    continue; // no change: suppressed
                }
                values[e.net.index()] = e.value;
                if let Some(w) = waveforms.get_mut(&e.net) {
                    w.record(now, e.value);
                }
                for entry in circuit.fanout(e.net) {
                    if stamp[entry.gate.index()] != stamp_counter {
                        stamp[entry.gate.index()] = stamp_counter;
                        dirty.push(entry.gate);
                    }
                }
            }
            if initial {
                // Initial evaluation: every non-source gate computes its
                // output from the initialized nets.
                for (id, g) in circuit.iter() {
                    if !g.kind().is_source() && stamp[id.index()] != stamp_counter {
                        stamp[id.index()] = stamp_counter;
                        dirty.push(id);
                    }
                }
            }

            // Phase 2: evaluate each affected gate once, in id order.
            dirty.sort_unstable();
            for &id in &dirty {
                eval_counts[id.index()] += 1;
                stats.gate_evaluations += 1;
                if ph.enabled() {
                    ph.emit(now.ticks(), now.ticks(), 0, id.index() as u32, TraceKind::GateEval, 1);
                }
                let out = evaluate_gate(
                    circuit,
                    id,
                    &mut |f| values[f.index()],
                    &mut runtime[id.index()],
                );
                if let Some(v) = out {
                    let due = now + circuit.delay(id);
                    queue.push(Event::new(due, id, v));
                    stats.events_scheduled += 1;
                    if ph.enabled() {
                        ph.emit(
                            now.ticks(),
                            due.ticks(),
                            0,
                            id.index() as u32,
                            TraceKind::Enqueue,
                            queue.len() as u64,
                        );
                    }
                }
            }
        };

        // The t = 0 step always runs (initial evaluation), then the main
        // loop drains the queue in timestamp order.
        step(
            VirtualTime::ZERO,
            true,
            &mut queue,
            &mut values,
            &mut runtime,
            &mut stats,
            &mut waveforms,
        );
        loop {
            let now = match queue.peek_time() {
                Some(t) if t <= until => t,
                _ => break,
            };
            step(now, false, &mut queue, &mut values, &mut runtime, &mut stats, &mut waveforms);
        }

        let outcome = SimOutcome { final_values: values, waveforms, end_time: until, stats };
        (outcome, eval_counts)
    }
}

impl<V: LogicValue> Default for SequentialSimulator<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: LogicValue> Simulator<V> for SequentialSimulator<V> {
    fn name(&self) -> String {
        match self.queue {
            QueueKind::BinaryHeap => "sequential".to_owned(),
            QueueKind::Calendar => "sequential(calendar)".to_owned(),
            QueueKind::PairingHeap => "sequential(pairing)".to_owned(),
        }
    }

    fn run(&self, circuit: &Circuit, stimulus: &Stimulus, until: VirtualTime) -> SimOutcome<V> {
        self.run_with_activity(circuit, stimulus, until).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim_logic::{Bit, Logic4};
    use parsim_netlist::{bench, generate, CircuitBuilder, Delay, DelayModel};

    fn run_bits(circuit: &Circuit, stim: &Stimulus, until: u64) -> SimOutcome<Bit> {
        SequentialSimulator::<Bit>::new().with_observe(Observe::AllNets).run(
            circuit,
            stim,
            VirtualTime::new(until),
        )
    }

    #[test]
    fn c17_matches_functional_model() {
        let c = bench::c17();
        let stim = Stimulus::counting(100);
        // 100-tick interval: plenty of settle time for a depth-3 circuit.
        let out = run_bits(&c, &stim, 3200);
        // After the final vector (step 31: all inputs 1) the outputs must be
        // the NAND-network's functional value: compute by hand.
        // With all inputs 1: 10 = NAND(1,3)=0, 11 = NAND(3,6)=0,
        // 16 = NAND(2,11)=1, 19 = NAND(11,7)=1, 22 = NAND(10,16)=1,
        // 23 = NAND(16,19)=0.
        assert_eq!(out.value_by_name(&c, "22"), Some(Bit::One));
        assert_eq!(out.value_by_name(&c, "23"), Some(Bit::Zero));
    }

    #[test]
    fn xor_chain_propagates_with_delay() {
        // in -> NOT -> NOT -> NOT (delay 2 each): output is ~in after 6 ticks.
        let mut b = CircuitBuilder::new("chain");
        let mut cur = b.input("in");
        for i in 0..3 {
            cur = b.named_gate(format!("n{i}"), GateKind::Not, [cur], Delay::new(2));
        }
        b.output("y", cur);
        let c = b.finish().unwrap();
        let stim = Stimulus::vectors(100, vec![vec![true]]);
        let out = run_bits(&c, &stim, 100);
        let y = c.find("n2").unwrap();
        let w = &out.waveforms[&y];
        // Initial evaluation drives y to 1 at t=6 (all-zero inputs, odd
        // inversions); input 1 at t=0 flips it back at... both waves race
        // through; final: ~1 = 0 ... check final value and transition times.
        assert_eq!(out.value(y), Bit::Zero);
        assert!(w.transitions().iter().all(|&(t, _)| t.ticks() % 2 == 0));
    }

    #[test]
    fn lfsr_advances_every_rising_edge() {
        let c = generate::lfsr(8, DelayModel::Unit);
        let stim = Stimulus::quiet(1000).with_clock(5);
        let out = run_bits(&c, &stim, 500);
        // XNOR feedback from the all-zero state must have produced activity.
        let q0 = c.find("q0").unwrap();
        assert!(out.waveforms[&q0].toggle_count() > 0, "LFSR never advanced");
    }

    #[test]
    fn counter_counts() {
        let c = generate::counter(5, DelayModel::Unit);
        let stim = Stimulus::quiet(10_000).with_clock(10);
        // 25 rising edges by t = 500 (at 10, 30, ..., 490).
        let out = run_bits(&c, &stim, 505);
        let value: u32 = (0..5)
            .map(|i| {
                let q = c.find(&format!("q{i}")).unwrap();
                (out.value(q) == Bit::One) as u32
            })
            .enumerate()
            .map(|(i, b)| b << i)
            .sum();
        assert_eq!(value, 25);
    }

    #[test]
    fn queue_variants_are_identical() {
        let c = generate::random_dag(&Default::default());
        let stim = Stimulus::random(9, 13);
        let heap = SequentialSimulator::<Logic4>::new().with_observe(Observe::AllNets).run(
            &c,
            &stim,
            VirtualTime::new(400),
        );
        for kind in [QueueKind::Calendar, QueueKind::PairingHeap] {
            let other = SequentialSimulator::<Logic4>::new()
                .with_observe(Observe::AllNets)
                .with_queue(kind)
                .run(&c, &stim, VirtualTime::new(400));
            assert_eq!(heap.divergence_from(&other), None, "{kind:?} diverged");
        }
    }

    #[test]
    fn quiet_circuit_settles() {
        let c = bench::c17();
        let stim = Stimulus::random_with_toggle(1, 10, 0.0);
        let out = run_bits(&c, &stim, 10_000);
        // Only initialization activity; far fewer evaluations than ticks.
        assert!(out.stats.gate_evaluations < 50);
    }

    #[test]
    fn constants_drive_their_values() {
        let mut b = CircuitBuilder::new("t");
        let one = b.constant(true);
        let zero = b.constant(false);
        let g = b.gate(GateKind::And, [one, zero], Delay::UNIT);
        let h = b.gate(GateKind::Or, [one, zero], Delay::UNIT);
        b.output("g", g);
        b.output("h", h);
        let c = b.finish().unwrap();
        let stim = Stimulus::quiet(10);
        let out = run_bits(&c, &stim, 100);
        assert_eq!(out.value(g), Bit::Zero);
        assert_eq!(out.value(h), Bit::One);
    }

    #[test]
    fn until_bounds_processing() {
        let c = generate::counter(4, DelayModel::Unit);
        let stim = Stimulus::quiet(1000).with_clock(10);
        let early = run_bits(&c, &stim, 15);
        let late = run_bits(&c, &stim, 300);
        assert!(early.stats.events_processed < late.stats.events_processed);
        assert_eq!(early.end_time, VirtualTime::new(15));
    }

    #[test]
    fn std9_simulation_runs() {
        use parsim_logic::Std9;
        let c = bench::c17();
        let stim = Stimulus::random(4, 10);
        let out = SequentialSimulator::<Std9>::new().run(&c, &stim, VirtualTime::new(200));
        // Boolean stimulus through NANDs yields Boolean outputs.
        for po in c.outputs() {
            assert!(!out.value(*po).is_unknown());
        }
    }
}
