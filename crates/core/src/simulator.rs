//! The kernel abstraction.

use parsim_event::VirtualTime;
use parsim_logic::LogicValue;
use parsim_netlist::Circuit;

use crate::{SimOutcome, Stimulus};

/// Which nets to record waveforms for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Observe {
    /// Record the primary outputs (the default).
    #[default]
    Outputs,
    /// Record every net — expensive, but what the exhaustive differential
    /// tests use.
    AllNets,
    /// Record nothing; only final values and statistics are produced.
    Nothing,
}

impl Observe {
    /// Returns `true` if the net driven by gate `id` should be recorded.
    pub fn wants(self, circuit: &Circuit, id: parsim_netlist::GateId) -> bool {
        match self {
            Observe::Outputs => circuit.outputs().contains(&id),
            Observe::AllNets => true,
            Observe::Nothing => false,
        }
    }
}

/// A simulation kernel: anything that can run a circuit against a stimulus
/// up to an end time.
///
/// Implementations in this workspace: the sequential reference, the
/// oblivious compiled-mode kernel, and the synchronous / conservative /
/// optimistic parallel kernels. All are interchangeable — logical results
/// are identical; only [`SimStats`](crate::SimStats) differ.
pub trait Simulator<V: LogicValue> {
    /// A short, stable kernel name for experiment tables.
    fn name(&self) -> String;

    /// Runs the circuit against the stimulus until `until` (inclusive of
    /// events stamped exactly `until`).
    fn run(&self, circuit: &Circuit, stimulus: &Stimulus, until: VirtualTime) -> SimOutcome<V>;
}
