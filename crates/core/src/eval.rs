//! The shared gate-evaluation semantics every kernel routes through.

use parsim_logic::{eval_combinational, eval_dff, eval_latch, GateKind, LogicValue};
use parsim_netlist::{Circuit, GateId};

/// Per-gate runtime state: sequential storage plus the output-change filter.
///
/// * `q` — the stored value of a flip-flop or latch (unused for
///   combinational gates),
/// * `prev_clk` — the clock/enable level seen at the previous evaluation
///   (edge detection),
/// * `last_driven` — the value most recently scheduled onto the gate's
///   output net; an evaluation only produces an event when the new output
///   differs (the standard event-driven suppression rule).
///
/// Time Warp snapshots this struct as part of LP state saving; it is
/// deliberately small and `Copy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GateRuntime<V> {
    /// Stored sequential value.
    pub q: V,
    /// Clock/enable level at the previous evaluation.
    pub prev_clk: V,
    /// Last value scheduled on the output net.
    pub last_driven: V,
}

impl<V: LogicValue> Default for GateRuntime<V> {
    fn default() -> Self {
        GateRuntime { q: V::ZERO, prev_clk: V::ZERO, last_driven: V::ZERO }
    }
}

/// Evaluates one gate under the workspace-wide semantics and returns the new
/// output value if (and only if) it differs from the last driven value.
///
/// The contract shared by every kernel:
///
/// 1. all input-net updates carrying the gate's evaluation timestamp have
///    already been applied (visible through `read`),
/// 2. the gate is evaluated **at most once per timestamp**,
/// 3. `Some(v)` means "schedule an event driving the output net to `v` at
///    `now + delay(gate)`"; `None` means no event.
///
/// Sequential elements update their stored state as a side effect, which is
/// why rollback-capable kernels snapshot [`GateRuntime`] before calling this.
///
/// Primary inputs and constants return `None`: their values are driven by
/// the stimulus and the initialization phase, never by evaluation.
///
/// # Examples
///
/// ```
/// use parsim_core::{evaluate_gate, GateRuntime};
/// use parsim_logic::{GateKind, Logic4};
/// use parsim_netlist::{CircuitBuilder, Delay};
///
/// let mut b = CircuitBuilder::new("t");
/// let a = b.input("a");
/// let n = b.gate(GateKind::Not, [a], Delay::UNIT);
/// b.output("y", n);
/// let c = b.finish().unwrap();
///
/// let mut rt = GateRuntime::default();
/// // With a = 0 the inverter should drive 1 (differs from the initial 0).
/// let out = evaluate_gate(&c, n, &mut |_| Logic4::Zero, &mut rt);
/// assert_eq!(out, Some(Logic4::One));
/// // Evaluating again with unchanged inputs produces no event.
/// assert_eq!(evaluate_gate(&c, n, &mut |_| Logic4::Zero, &mut rt), None);
/// ```
pub fn evaluate_gate<V: LogicValue>(
    circuit: &Circuit,
    id: GateId,
    read: &mut dyn FnMut(GateId) -> V,
    rt: &mut GateRuntime<V>,
) -> Option<V> {
    let gate = circuit.gate(id);
    let fanin = gate.fanin();
    let new = match gate.kind() {
        k if k.is_source() => return None,
        GateKind::Dff => {
            let clk = read(fanin[0]);
            let d = read(fanin[1]);
            let up = eval_dff(rt.prev_clk, clk, d, rt.q);
            rt.prev_clk = clk;
            rt.q = up.q;
            up.q
        }
        GateKind::Latch => {
            let en = read(fanin[0]);
            let d = read(fanin[1]);
            let up = eval_latch(en, d, rt.q);
            rt.prev_clk = en;
            rt.q = up.q;
            up.q
        }
        k => {
            let mut inputs = [V::ZERO; 8];
            if fanin.len() <= inputs.len() {
                for (slot, &f) in inputs.iter_mut().zip(fanin) {
                    *slot = read(f);
                }
                eval_combinational(k, &inputs[..fanin.len()])
            } else {
                let inputs: Vec<V> = fanin.iter().map(|&f| read(f)).collect();
                eval_combinational(k, &inputs)
            }
        }
    };
    if new != rt.last_driven {
        rt.last_driven = new;
        Some(new)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim_netlist::{CircuitBuilder, Delay};

    fn dff_circuit() -> (Circuit, GateId, GateId, GateId) {
        let mut b = CircuitBuilder::new("t");
        let clk = b.input("clk");
        let d = b.input("d");
        let q = b.gate(GateKind::Dff, [clk, d], Delay::UNIT);
        b.output("q", q);
        (b.finish().unwrap(), clk, d, q)
    }

    #[test]
    fn dff_edge_detection_via_runtime() {
        use parsim_logic::Logic4;
        let (c, clk, d, q) = dff_circuit();
        let mut rt = GateRuntime::default();
        let mut vals = std::collections::HashMap::from([(clk, Logic4::Zero), (d, Logic4::One)]);

        // Clock low: no capture, q stays 0 → no event.
        let mut read = |id: GateId| vals[&id];
        assert_eq!(evaluate_gate(&c, q, &mut read, &mut rt), None);

        // Rising edge captures d = 1.
        vals.insert(clk, Logic4::One);
        let mut read = |id: GateId| vals[&id];
        assert_eq!(evaluate_gate(&c, q, &mut read, &mut rt), Some(Logic4::One));
        assert_eq!(rt.q, Logic4::One);

        // High level with d changing: no capture.
        vals.insert(d, Logic4::Zero);
        let mut read = |id: GateId| vals[&id];
        assert_eq!(evaluate_gate(&c, q, &mut read, &mut rt), None);

        // Falling edge: hold.
        vals.insert(clk, Logic4::Zero);
        let mut read = |id: GateId| vals[&id];
        assert_eq!(evaluate_gate(&c, q, &mut read, &mut rt), None);

        // Next rising edge captures the new d = 0.
        vals.insert(clk, Logic4::One);
        let mut read = |id: GateId| vals[&id];
        assert_eq!(evaluate_gate(&c, q, &mut read, &mut rt), Some(Logic4::Zero));
    }

    #[test]
    fn sources_never_produce_events() {
        use parsim_logic::Bit;
        let mut b = CircuitBuilder::new("t");
        let a = b.input("a");
        let k = b.constant(true);
        let g = b.gate(GateKind::And, [a, k], Delay::UNIT);
        b.output("o", g);
        let c = b.finish().unwrap();
        let mut rt = GateRuntime::<Bit>::default();
        assert_eq!(evaluate_gate(&c, a, &mut |_| Bit::One, &mut rt), None);
        assert_eq!(evaluate_gate(&c, k, &mut |_| Bit::One, &mut rt), None);
    }

    #[test]
    fn wide_gate_falls_back_to_heap_path() {
        use parsim_logic::Bit;
        let mut b = CircuitBuilder::new("t");
        let ins: Vec<GateId> = (0..12).map(|i| b.input(format!("i{i}"))).collect();
        let g = b.gate(GateKind::And, ins.clone(), Delay::UNIT);
        b.output("o", g);
        let c = b.finish().unwrap();
        let mut rt = GateRuntime::<Bit>::default();
        assert_eq!(evaluate_gate(&c, g, &mut |_| Bit::One, &mut rt), Some(Bit::One));
    }
}
