//! Simulation results and protocol statistics.

use std::collections::BTreeMap;
use std::fmt::{self, Display};

use parsim_event::VirtualTime;
use parsim_logic::LogicValue;
use parsim_netlist::{Circuit, GateId};

use crate::Waveform;

/// Counters describing how a kernel executed.
///
/// Every kernel fills the counters that apply to it and leaves the rest at
/// zero; the experiment harness prints them side by side. The modeled-time
/// fields are produced by kernels running on the virtual multiprocessor
/// (`parsim-machine`) and are the basis of every speedup figure.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[non_exhaustive]
pub struct SimStats {
    /// Events removed from queues and applied to nets (committed events for
    /// Time Warp).
    pub events_processed: u64,
    /// Events inserted into queues (including ones later cancelled).
    pub events_scheduled: u64,
    /// Gate evaluations performed (the §III "evaluation frequency" measure;
    /// far larger than `events_processed` for the oblivious kernel).
    pub gate_evaluations: u64,
    /// Inter-processor messages carrying real events.
    pub messages_sent: u64,
    /// Null messages sent (conservative kernels only).
    pub null_messages: u64,
    /// Barrier synchronizations executed. For the modeled synchronous
    /// kernel this is one per timestep; for every threaded kernel on the
    /// runtime fabric it is the number of synchronization rounds (each
    /// round is one barrier pair).
    pub barriers: u64,
    /// Rollbacks executed (optimistic kernels only).
    pub rollbacks: u64,
    /// Events undone by rollbacks (optimistic kernels only).
    pub events_rolled_back: u64,
    /// Anti-messages sent (optimistic kernels only).
    pub anti_messages: u64,
    /// State snapshots taken (optimistic kernels only).
    pub state_saves: u64,
    /// Bytes of state captured by snapshots (copy vs incremental saving).
    pub state_bytes_saved: u64,
    /// GVT computations performed (optimistic kernels only).
    pub gvt_rounds: u64,
    /// Modeled parallel makespan in cost units (virtual-machine kernels).
    pub modeled_makespan: u64,
    /// Modeled single-processor work in cost units; `modeled_work /
    /// modeled_makespan` is the modeled speedup.
    pub modeled_work: u64,
    /// True when the run stopped early because a
    /// [`RunBudget`](crate::RunBudget) bound was exhausted: final values
    /// and waveforms cover only the simulated prefix, not the requested
    /// horizon.
    pub truncated: bool,
}

impl SimStats {
    /// The modeled speedup (`modeled_work / modeled_makespan`), or `None`
    /// for kernels that did not run on the virtual machine.
    pub fn modeled_speedup(&self) -> Option<f64> {
        if self.modeled_makespan == 0 || self.modeled_work == 0 {
            None
        } else {
            Some(self.modeled_work as f64 / self.modeled_makespan as f64)
        }
    }

    /// Folds another shard's counters into this one — how the threaded
    /// kernels combine per-worker statistics.
    ///
    /// Additive counters saturate instead of wrapping. Run-wide quantities
    /// are *not* additive and take the maximum instead: every worker passes
    /// the same `barriers` and `gvt_rounds`, and `modeled_makespan` is by
    /// definition the largest processor clock.
    pub fn merge(&mut self, other: &SimStats) {
        self.events_processed = self.events_processed.saturating_add(other.events_processed);
        self.events_scheduled = self.events_scheduled.saturating_add(other.events_scheduled);
        self.gate_evaluations = self.gate_evaluations.saturating_add(other.gate_evaluations);
        self.messages_sent = self.messages_sent.saturating_add(other.messages_sent);
        self.null_messages = self.null_messages.saturating_add(other.null_messages);
        self.rollbacks = self.rollbacks.saturating_add(other.rollbacks);
        self.events_rolled_back = self.events_rolled_back.saturating_add(other.events_rolled_back);
        self.anti_messages = self.anti_messages.saturating_add(other.anti_messages);
        self.state_saves = self.state_saves.saturating_add(other.state_saves);
        self.state_bytes_saved = self.state_bytes_saved.saturating_add(other.state_bytes_saved);
        self.modeled_work = self.modeled_work.saturating_add(other.modeled_work);
        self.barriers = self.barriers.max(other.barriers);
        self.gvt_rounds = self.gvt_rounds.max(other.gvt_rounds);
        self.modeled_makespan = self.modeled_makespan.max(other.modeled_makespan);
        self.truncated |= other.truncated;
    }

    /// Fraction of processed events that survived (were not rolled back);
    /// 1.0 for non-optimistic kernels.
    pub fn efficiency(&self) -> f64 {
        let executed = self.events_processed + self.events_rolled_back;
        if executed == 0 {
            1.0
        } else {
            self.events_processed as f64 / executed as f64
        }
    }
}

impl Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} events, {} evals", self.events_processed, self.gate_evaluations)?;
        if self.null_messages > 0 {
            write!(f, ", {} nulls", self.null_messages)?;
        }
        if self.barriers > 0 {
            write!(f, ", {} barriers", self.barriers)?;
        }
        if self.rollbacks > 0 {
            write!(
                f,
                ", {} rollbacks ({} undone, eff {:.2})",
                self.rollbacks,
                self.events_rolled_back,
                self.efficiency()
            )?;
        }
        if let Some(s) = self.modeled_speedup() {
            write!(f, ", modeled speedup {s:.2}")?;
        }
        if self.truncated {
            write!(f, ", TRUNCATED")?;
        }
        Ok(())
    }
}

/// The complete result of one simulation run.
///
/// Contains the final value of every net, the waveforms of the observed
/// nets, and execution statistics. Logical results (`final_values`,
/// `waveforms`, `end_time`) must be identical across kernels for the same
/// circuit and stimulus; `stats` of course differ — that is the point.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutcome<V> {
    /// Final value of every net, indexed by gate id.
    pub final_values: Vec<V>,
    /// Waveforms of the observed nets.
    pub waveforms: BTreeMap<GateId, Waveform<V>>,
    /// The virtual time the results are valid through. Equal to the
    /// requested horizon for a complete run; for a budget-truncated run
    /// ([`SimStats::truncated`]) it is the last globally *committed* tick,
    /// and every waveform transition is at or before it — partial results
    /// never claim unsimulated time.
    pub end_time: VirtualTime,
    /// Execution statistics.
    pub stats: SimStats,
}

impl<V: LogicValue> SimOutcome<V> {
    /// The final value of a net.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn value(&self, id: GateId) -> V {
        self.final_values[id.index()]
    }

    /// The final value of a named net, if it exists.
    pub fn value_by_name(&self, circuit: &Circuit, name: &str) -> Option<V> {
        circuit.find(name).map(|id| self.value(id))
    }

    /// The final primary-output values, in declaration order.
    pub fn output_values(&self, circuit: &Circuit) -> Vec<V> {
        circuit.outputs().iter().map(|&po| self.value(po)).collect()
    }

    /// Returns the first divergence between the *logical* results of two
    /// runs, or `None` if they agree exactly.
    ///
    /// Used by every differential test: kernels are interchangeable iff this
    /// returns `None` for all circuits and stimuli.
    pub fn divergence_from(&self, other: &SimOutcome<V>) -> Option<String> {
        if self.end_time != other.end_time {
            return Some(format!("end times differ: {} vs {}", self.end_time, other.end_time));
        }
        if self.final_values.len() != other.final_values.len() {
            return Some("net counts differ".to_owned());
        }
        for (i, (a, b)) in self.final_values.iter().zip(&other.final_values).enumerate() {
            if a != b {
                return Some(format!("final value of g{i}: {a} vs {b}"));
            }
        }
        for (id, wa) in &self.waveforms {
            match other.waveforms.get(id) {
                None => return Some(format!("waveform for {id} missing in other run")),
                Some(wb) if wa != wb => {
                    return Some(format!(
                        "waveform of {id} differs:\n  a: {}\n  b: {}",
                        wa.to_trace_string(),
                        wb.to_trace_string()
                    ));
                }
                _ => {}
            }
        }
        if self.waveforms.len() != other.waveforms.len() {
            return Some("observed net sets differ".to_owned());
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim_logic::Bit;

    fn outcome(vals: Vec<Bit>) -> SimOutcome<Bit> {
        SimOutcome {
            final_values: vals,
            waveforms: BTreeMap::new(),
            end_time: VirtualTime::new(10),
            stats: SimStats::default(),
        }
    }

    #[test]
    fn divergence_detects_value_mismatch() {
        let a = outcome(vec![Bit::Zero, Bit::One]);
        let b = outcome(vec![Bit::Zero, Bit::Zero]);
        assert!(a.divergence_from(&b).unwrap().contains("g1"));
        assert_eq!(a.divergence_from(&a.clone()), None);
    }

    #[test]
    fn divergence_detects_waveform_mismatch() {
        let mut a = outcome(vec![Bit::Zero]);
        let mut b = outcome(vec![Bit::Zero]);
        let mut w = Waveform::new(Bit::Zero);
        w.record(VirtualTime::new(3), Bit::One);
        a.waveforms.insert(GateId::new(0), w);
        b.waveforms.insert(GateId::new(0), Waveform::new(Bit::Zero));
        assert!(a.divergence_from(&b).unwrap().contains("waveform"));
    }

    #[test]
    fn merge_adds_counters_and_maxes_run_wide_fields() {
        let mut a = SimStats {
            events_processed: 10,
            gate_evaluations: u64::MAX - 5,
            barriers: 7,
            gvt_rounds: 3,
            modeled_makespan: 100,
            modeled_work: 40,
            ..Default::default()
        };
        let b = SimStats {
            events_processed: 5,
            gate_evaluations: 100, // would overflow: must saturate
            barriers: 7,           // same barriers seen by every worker
            gvt_rounds: 9,
            modeled_makespan: 80,
            modeled_work: 60,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.events_processed, 15);
        assert_eq!(a.gate_evaluations, u64::MAX);
        assert_eq!(a.barriers, 7);
        assert_eq!(a.gvt_rounds, 9);
        assert_eq!(a.modeled_makespan, 100);
        assert_eq!(a.modeled_work, 100);
    }

    #[test]
    fn efficiency_and_speedup() {
        let mut s = SimStats { events_processed: 80, events_rolled_back: 20, ..Default::default() };
        assert_eq!(s.efficiency(), 0.8);
        assert_eq!(s.modeled_speedup(), None);
        s.modeled_work = 1000;
        s.modeled_makespan = 250;
        assert_eq!(s.modeled_speedup(), Some(4.0));
        let shown = s.to_string();
        assert!(shown.contains("speedup 4.00"));
    }
}
