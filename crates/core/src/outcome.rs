//! Simulation results and protocol statistics.

use std::collections::BTreeMap;
use std::fmt::{self, Display};

use parsim_event::VirtualTime;
use parsim_logic::LogicValue;
use parsim_netlist::{Circuit, GateId};

use crate::Waveform;

/// Counters describing how a kernel executed.
///
/// Every kernel fills the counters that apply to it and leaves the rest at
/// zero; the experiment harness prints them side by side. The modeled-time
/// fields are produced by kernels running on the virtual multiprocessor
/// (`parsim-machine`) and are the basis of every speedup figure.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[non_exhaustive]
pub struct SimStats {
    /// Events removed from queues and applied to nets (committed events for
    /// Time Warp).
    pub events_processed: u64,
    /// Events inserted into queues (including ones later cancelled).
    pub events_scheduled: u64,
    /// Gate evaluations performed (the §III "evaluation frequency" measure;
    /// far larger than `events_processed` for the oblivious kernel).
    pub gate_evaluations: u64,
    /// Inter-processor messages carrying real events.
    pub messages_sent: u64,
    /// Null messages sent (conservative kernels only).
    pub null_messages: u64,
    /// Barrier synchronizations executed (synchronous kernel only).
    pub barriers: u64,
    /// Rollbacks executed (optimistic kernels only).
    pub rollbacks: u64,
    /// Events undone by rollbacks (optimistic kernels only).
    pub events_rolled_back: u64,
    /// Anti-messages sent (optimistic kernels only).
    pub anti_messages: u64,
    /// State snapshots taken (optimistic kernels only).
    pub state_saves: u64,
    /// Bytes of state captured by snapshots (copy vs incremental saving).
    pub state_bytes_saved: u64,
    /// GVT computations performed (optimistic kernels only).
    pub gvt_rounds: u64,
    /// Modeled parallel makespan in cost units (virtual-machine kernels).
    pub modeled_makespan: u64,
    /// Modeled single-processor work in cost units; `modeled_work /
    /// modeled_makespan` is the modeled speedup.
    pub modeled_work: u64,
}

impl SimStats {
    /// The modeled speedup (`modeled_work / modeled_makespan`), or `None`
    /// for kernels that did not run on the virtual machine.
    pub fn modeled_speedup(&self) -> Option<f64> {
        if self.modeled_makespan == 0 || self.modeled_work == 0 {
            None
        } else {
            Some(self.modeled_work as f64 / self.modeled_makespan as f64)
        }
    }

    /// Fraction of processed events that survived (were not rolled back);
    /// 1.0 for non-optimistic kernels.
    pub fn efficiency(&self) -> f64 {
        let executed = self.events_processed + self.events_rolled_back;
        if executed == 0 {
            1.0
        } else {
            self.events_processed as f64 / executed as f64
        }
    }
}

impl Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} events, {} evals", self.events_processed, self.gate_evaluations)?;
        if self.null_messages > 0 {
            write!(f, ", {} nulls", self.null_messages)?;
        }
        if self.barriers > 0 {
            write!(f, ", {} barriers", self.barriers)?;
        }
        if self.rollbacks > 0 {
            write!(
                f,
                ", {} rollbacks ({} undone, eff {:.2})",
                self.rollbacks,
                self.events_rolled_back,
                self.efficiency()
            )?;
        }
        if let Some(s) = self.modeled_speedup() {
            write!(f, ", modeled speedup {s:.2}")?;
        }
        Ok(())
    }
}

/// The complete result of one simulation run.
///
/// Contains the final value of every net, the waveforms of the observed
/// nets, and execution statistics. Logical results (`final_values`,
/// `waveforms`, `end_time`) must be identical across kernels for the same
/// circuit and stimulus; `stats` of course differ — that is the point.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutcome<V> {
    /// Final value of every net, indexed by gate id.
    pub final_values: Vec<V>,
    /// Waveforms of the observed nets.
    pub waveforms: BTreeMap<GateId, Waveform<V>>,
    /// The time the simulation ran to.
    pub end_time: VirtualTime,
    /// Execution statistics.
    pub stats: SimStats,
}

impl<V: LogicValue> SimOutcome<V> {
    /// The final value of a net.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn value(&self, id: GateId) -> V {
        self.final_values[id.index()]
    }

    /// The final value of a named net, if it exists.
    pub fn value_by_name(&self, circuit: &Circuit, name: &str) -> Option<V> {
        circuit.find(name).map(|id| self.value(id))
    }

    /// The final primary-output values, in declaration order.
    pub fn output_values(&self, circuit: &Circuit) -> Vec<V> {
        circuit.outputs().iter().map(|&po| self.value(po)).collect()
    }

    /// Returns the first divergence between the *logical* results of two
    /// runs, or `None` if they agree exactly.
    ///
    /// Used by every differential test: kernels are interchangeable iff this
    /// returns `None` for all circuits and stimuli.
    pub fn divergence_from(&self, other: &SimOutcome<V>) -> Option<String> {
        if self.end_time != other.end_time {
            return Some(format!("end times differ: {} vs {}", self.end_time, other.end_time));
        }
        if self.final_values.len() != other.final_values.len() {
            return Some("net counts differ".to_owned());
        }
        for (i, (a, b)) in self.final_values.iter().zip(&other.final_values).enumerate() {
            if a != b {
                return Some(format!("final value of g{i}: {a} vs {b}"));
            }
        }
        for (id, wa) in &self.waveforms {
            match other.waveforms.get(id) {
                None => return Some(format!("waveform for {id} missing in other run")),
                Some(wb) if wa != wb => {
                    return Some(format!(
                        "waveform of {id} differs:\n  a: {}\n  b: {}",
                        wa.to_trace_string(),
                        wb.to_trace_string()
                    ));
                }
                _ => {}
            }
        }
        if self.waveforms.len() != other.waveforms.len() {
            return Some("observed net sets differ".to_owned());
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim_logic::Bit;

    fn outcome(vals: Vec<Bit>) -> SimOutcome<Bit> {
        SimOutcome {
            final_values: vals,
            waveforms: BTreeMap::new(),
            end_time: VirtualTime::new(10),
            stats: SimStats::default(),
        }
    }

    #[test]
    fn divergence_detects_value_mismatch() {
        let a = outcome(vec![Bit::Zero, Bit::One]);
        let b = outcome(vec![Bit::Zero, Bit::Zero]);
        assert!(a.divergence_from(&b).unwrap().contains("g1"));
        assert_eq!(a.divergence_from(&a.clone()), None);
    }

    #[test]
    fn divergence_detects_waveform_mismatch() {
        let mut a = outcome(vec![Bit::Zero]);
        let mut b = outcome(vec![Bit::Zero]);
        let mut w = Waveform::new(Bit::Zero);
        w.record(VirtualTime::new(3), Bit::One);
        a.waveforms.insert(GateId::new(0), w);
        b.waveforms.insert(GateId::new(0), Waveform::new(Bit::Zero));
        assert!(a.divergence_from(&b).unwrap().contains("waveform"));
    }

    #[test]
    fn efficiency_and_speedup() {
        let mut s = SimStats { events_processed: 80, events_rolled_back: 20, ..Default::default() };
        assert_eq!(s.efficiency(), 0.8);
        assert_eq!(s.modeled_speedup(), None);
        s.modeled_work = 1000;
        s.modeled_makespan = 250;
        assert_eq!(s.modeled_speedup(), Some(4.0));
        let shown = s.to_string();
        assert!(shown.contains("speedup 4.00"));
    }
}
