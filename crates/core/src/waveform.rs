//! Signal traces.

use parsim_event::VirtualTime;
use parsim_logic::LogicValue;

/// The value history of one net: `(time, value)` transitions in increasing
/// time order, starting with the initial value at `t = 0`.
///
/// Used both as a user-facing result and as the exact comparison object of
/// the differential tests (two kernels agree iff every observed waveform is
/// identical).
///
/// # Examples
///
/// ```
/// use parsim_core::Waveform;
/// use parsim_event::VirtualTime;
/// use parsim_logic::Bit;
///
/// let mut w = Waveform::new(Bit::Zero);
/// w.record(VirtualTime::new(5), Bit::One);
/// w.record(VirtualTime::new(9), Bit::Zero);
/// assert_eq!(w.value_at(VirtualTime::new(7)), Bit::One);
/// assert_eq!(w.transitions().len(), 3);
/// assert_eq!(w.toggle_count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waveform<V> {
    transitions: Vec<(VirtualTime, V)>,
}

impl<V: LogicValue> Waveform<V> {
    /// Creates a waveform with the given initial value at `t = 0`.
    pub fn new(initial: V) -> Self {
        Waveform { transitions: vec![(VirtualTime::ZERO, initial)] }
    }

    /// Appends a transition.
    ///
    /// Recording a value at a time already present overwrites that entry
    /// (the net's final value at that timestamp wins); otherwise times must
    /// be appended in increasing order.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the last recorded transition.
    pub fn record(&mut self, time: VirtualTime, value: V) {
        let last = self.transitions.last_mut().expect("waveform always has an initial entry");
        assert!(time >= last.0, "waveform transitions must be recorded in time order");
        if last.0 == time {
            last.1 = value;
        } else if last.1 != value {
            self.transitions.push((time, value));
        }
    }

    /// All transitions, in time order (first entry is the initial value).
    pub fn transitions(&self) -> &[(VirtualTime, V)] {
        &self.transitions
    }

    /// The value of the net at an arbitrary time.
    pub fn value_at(&self, time: VirtualTime) -> V {
        match self.transitions.binary_search_by_key(&time, |&(t, _)| t) {
            Ok(i) => self.transitions[i].1,
            Err(0) => self.transitions[0].1,
            Err(i) => self.transitions[i - 1].1,
        }
    }

    /// The final recorded value.
    pub fn final_value(&self) -> V {
        self.transitions.last().expect("waveform always has an initial entry").1
    }

    /// Number of value changes (excluding the initial entry).
    pub fn toggle_count(&self) -> usize {
        self.transitions.len() - 1
    }

    /// Removes every transition at or after `time` (used by optimistic
    /// kernels when rolling back tentatively recorded history). The initial
    /// entry is never removed.
    pub fn truncate_from(&mut self, time: VirtualTime) {
        let keep = self.transitions.iter().take_while(|&&(t, _)| t < time).count().max(1);
        self.transitions.truncate(keep);
    }

    /// Renders the waveform as a compact `t0:v0 t1:v1 ...` string.
    pub fn to_trace_string(&self) -> String {
        self.transitions.iter().map(|(t, v)| format!("{t}:{v}")).collect::<Vec<_>>().join(" ")
    }
}

impl<V: LogicValue> Default for Waveform<V> {
    fn default() -> Self {
        Waveform::new(V::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim_logic::Logic4;

    #[test]
    fn duplicate_values_are_coalesced() {
        let mut w = Waveform::new(Logic4::Zero);
        w.record(VirtualTime::new(3), Logic4::Zero);
        assert_eq!(w.toggle_count(), 0);
        w.record(VirtualTime::new(5), Logic4::One);
        w.record(VirtualTime::new(8), Logic4::One);
        assert_eq!(w.toggle_count(), 1);
    }

    #[test]
    fn same_time_overwrites() {
        let mut w = Waveform::new(Logic4::Zero);
        w.record(VirtualTime::new(5), Logic4::One);
        w.record(VirtualTime::new(5), Logic4::X);
        assert_eq!(w.final_value(), Logic4::X);
        assert_eq!(w.toggle_count(), 1);
    }

    #[test]
    fn value_lookup() {
        let mut w = Waveform::new(Logic4::Zero);
        w.record(VirtualTime::new(10), Logic4::One);
        assert_eq!(w.value_at(VirtualTime::ZERO), Logic4::Zero);
        assert_eq!(w.value_at(VirtualTime::new(9)), Logic4::Zero);
        assert_eq!(w.value_at(VirtualTime::new(10)), Logic4::One);
        assert_eq!(w.value_at(VirtualTime::new(99)), Logic4::One);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn rejects_time_travel() {
        let mut w = Waveform::new(Logic4::Zero);
        w.record(VirtualTime::new(10), Logic4::One);
        w.record(VirtualTime::new(5), Logic4::Zero);
    }

    #[test]
    fn truncate_rolls_back_history() {
        let mut w = Waveform::new(Logic4::Zero);
        w.record(VirtualTime::new(3), Logic4::One);
        w.record(VirtualTime::new(7), Logic4::Zero);
        w.truncate_from(VirtualTime::new(5));
        assert_eq!(w.final_value(), Logic4::One);
        assert_eq!(w.toggle_count(), 1);
        // Re-recording the same history reproduces the original waveform.
        w.record(VirtualTime::new(7), Logic4::Zero);
        assert_eq!(w.transitions().len(), 3);
        // Truncating everything keeps the initial entry.
        w.truncate_from(VirtualTime::ZERO);
        assert_eq!(w.toggle_count(), 0);
    }

    #[test]
    fn trace_string() {
        let mut w = Waveform::new(Logic4::Zero);
        w.record(VirtualTime::new(2), Logic4::One);
        assert_eq!(w.to_trace_string(), "0:0 2:1");
    }
}
