//! Differential property tests: the oblivious kernel and both queue
//! variants of the sequential kernel must agree exactly on arbitrary
//! circuits and stimuli.

use parsim_core::{ObliviousSimulator, Observe, SequentialSimulator, Simulator, Stimulus};
use parsim_event::VirtualTime;
use parsim_logic::{Bit, Logic4};
use parsim_netlist::generate::{random_dag, RandomDagConfig};
use proptest::prelude::*;

fn any_dag() -> impl Strategy<Value = RandomDagConfig> {
    (20usize..200, 2usize..12, 0.0f64..0.3, any::<u64>()).prop_map(
        |(gates, inputs, seq_fraction, seed)| RandomDagConfig {
            gates,
            inputs,
            seq_fraction,
            seed,
            ..Default::default()
        },
    )
}

fn any_stimulus() -> impl Strategy<Value = Stimulus> {
    (any::<u64>(), 1u64..20, 0.0f64..=1.0, 1u64..10).prop_map(
        |(seed, interval, toggle, clock_half)| {
            Stimulus::random_with_toggle(seed, interval, toggle).with_clock(clock_half)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Oblivious (no event queue) and event-driven sequential kernels are
    /// bit-identical on unit-delay circuits — every net, every transition.
    #[test]
    fn oblivious_equals_sequential(cfg in any_dag(), stim in any_stimulus(), until in 20u64..200) {
        let c = random_dag(&cfg);
        let until = VirtualTime::new(until);
        let a = ObliviousSimulator::<Logic4>::new()
            .with_observe(Observe::AllNets)
            .run(&c, &stim, until);
        let b = SequentialSimulator::<Logic4>::new()
            .with_observe(Observe::AllNets)
            .run(&c, &stim, until);
        prop_assert_eq!(a.divergence_from(&b), None);
    }

    /// The calendar-queue sequential kernel is bit-identical to the
    /// binary-heap one.
    #[test]
    fn queue_choice_is_invisible(cfg in any_dag(), stim in any_stimulus(), until in 20u64..300) {
        let c = random_dag(&cfg);
        let until = VirtualTime::new(until);
        let a = SequentialSimulator::<Bit>::new()
            .with_observe(Observe::AllNets)
            .run(&c, &stim, until);
        let b = SequentialSimulator::<Bit>::new()
            .with_observe(Observe::AllNets)
            .with_calendar_queue()
            .run(&c, &stim, until);
        prop_assert_eq!(a.divergence_from(&b), None);
    }

    /// Two-valued and four-valued simulation agree on Boolean stimulus:
    /// Logic4 never reports a definite value different from Bit's.
    #[test]
    fn logic4_refines_bit(cfg in any_dag(), stim in any_stimulus(), until in 20u64..150) {
        let c = random_dag(&cfg);
        let until = VirtualTime::new(until);
        let b2 = SequentialSimulator::<Bit>::new().run(&c, &stim, until);
        let b4 = SequentialSimulator::<Logic4>::new().run(&c, &stim, until);
        for id in c.ids() {
            let two = b2.value(id);
            let four = b4.value(id);
            if let Some(v) = parsim_logic::LogicValue::to_bool(four) {
                prop_assert_eq!(v, two == Bit::One, "net {} differs", id);
            }
        }
    }
}
