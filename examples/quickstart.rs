//! Quickstart: simulate a circuit with every kernel and compare notes.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a 16-bit array multiplier, partitions it eight ways, runs the
//! sequential reference plus all three parallel disciplines (and the
//! oblivious kernel), verifies they agree bit-for-bit, and prints each
//! kernel's execution statistics.

use parsim::prelude::*;

fn main() {
    // 1. A circuit: a 16-bit array multiplier (~1.6k gates), unit delays.
    let circuit = generate::array_multiplier(16, DelayModel::Unit);
    println!("circuit : {circuit}");
    println!("stats   : {}", circuit.stats());

    // 2. A stimulus: a fresh random operand pair every 50 ticks.
    let stimulus = Stimulus::random(0xBEEF, 50);
    let until = VirtualTime::new(2_000);

    // 3. A partition: fanin cones across 8 processors.
    let weights = GateWeights::uniform(circuit.len());
    let partition = ConePartitioner.partition(&circuit, 8, &weights);
    println!("partition: {}", partition.quality(&circuit, &weights));

    // 4. Kernels.
    let machine = MachineConfig::shared_memory(8);
    let reference = SequentialSimulator::<Logic4>::new();
    let kernels: Vec<Box<dyn Simulator<Logic4>>> = vec![
        Box::new(ObliviousSimulator::new()),
        Box::new(SyncSimulator::new(partition.clone(), machine)),
        Box::new(ConservativeSimulator::new(partition.clone(), machine)),
        Box::new(
            ConservativeSimulator::new(partition.clone(), machine)
                .with_strategy(DeadlockStrategy::DetectAndRecover),
        ),
        Box::new(TimeWarpSimulator::new(partition.clone(), machine)),
        Box::new(
            TimeWarpSimulator::new(partition.clone(), machine)
                .with_cancellation(Cancellation::Aggressive)
                .with_state_saving(StateSaving::Copy),
        ),
        Box::new(BtbSimulator::new(partition.clone(), machine)),
    ];

    let baseline = reference.run(&circuit, &stimulus, until);
    println!("\n{:<28} {}", reference.name(), baseline.stats);

    for kernel in kernels {
        let out = kernel.run(&circuit, &stimulus, until);
        match out.divergence_from(&baseline) {
            None => println!("{:<28} {}", kernel.name(), out.stats),
            Some(d) => panic!("{} diverged from the reference: {d}", kernel.name()),
        }
    }

    // 5. The answer itself: the final product bits.
    let product: String =
        circuit.outputs().iter().rev().map(|&po| baseline.value(po).to_string()).collect();
    println!("\nfinal product bits (p31..p0): {product}");
    println!("all kernels agree ✓");
}
