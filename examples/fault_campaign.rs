//! Fault-simulation campaign: test-vector quality measured as stuck-at
//! coverage, plus a VCD dump of the good machine for waveform viewing.
//!
//! ```sh
//! cargo run --release --example fault_campaign
//! ```
//!
//! The paper's §II singles out fault simulation as the workload where *data
//! parallelism* shines — every fault is an independent simulation. This
//! example runs the campaign serially, reports the coverage ramp as vectors
//! accumulate, re-runs the final campaign through the bit-parallel fast
//! path (64 faulty machines per packed pass) to show the reports agree,
//! and writes `c17.vcd` for any waveform viewer.

use parsim::core::fault;
use parsim::prelude::*;

fn main() {
    let circuit = bench::c17();
    println!("circuit: {} | {}", circuit, circuit.stats());

    let faults = fault::enumerate_faults(&circuit);
    println!("fault universe: {} single stuck-at faults\n", faults.len());

    // Coverage ramp: how many random vectors until full coverage?
    println!("{:>8} {:>10} {:>10}", "vectors", "detected", "coverage");
    let interval = 16u64;
    for n_vectors in [1u64, 2, 4, 8, 16, 32] {
        let stimulus = Stimulus::random(0xFA17, interval);
        let until = VirtualTime::new(n_vectors * interval);
        let report = fault::simulate_faults::<Bit>(&circuit, &faults, &stimulus, until);
        println!(
            "{n_vectors:>8} {:>10} {:>9.1}%",
            report.detected_count(),
            report.coverage() * 100.0
        );
        if report.coverage() == 1.0 {
            println!("\nfull coverage reached with {n_vectors} random vectors");
            break;
        }
        if n_vectors == 32 {
            println!("\nundetected after 32 vectors:");
            for f in report.undetected() {
                let name = circuit.gate(f.net).name().unwrap_or("?");
                println!("  {name} stuck-at-{}", u8::from(f.value));
            }
        }
    }

    // The same campaign through the bit-parallel fast path: lane k of each
    // packed pass simulates faulty machine k, so the whole 22-fault
    // universe costs one packed run instead of 22 serial ones.
    let stimulus = Stimulus::random(0xFA17, interval);
    let until = VirtualTime::new(32 * interval);
    let serial = fault::simulate_faults::<Bit>(&circuit, &faults, &stimulus, until);
    let packed = simulate_faults_packed::<PackedBit>(
        &BitSimulator::new(),
        &circuit,
        &faults,
        &stimulus,
        until,
    );
    assert_eq!(packed, serial, "packed and serial campaigns must agree");
    println!(
        "\nbit-parallel campaign: {} in {} packed pass(es), identical to serial",
        packed,
        faults.len().div_ceil(64)
    );

    // Dump the good machine's output waveforms as VCD.
    let out = SequentialSimulator::<Logic4>::new().with_observe(Observe::AllNets).run(
        &circuit,
        &Stimulus::counting(10),
        VirtualTime::new(330),
    );
    let vcd = write_vcd(&circuit, &out);
    let path = "c17.vcd";
    std::fs::write(path, &vcd).expect("write vcd");
    println!(
        "\nwrote {path}: {} bytes, {} signals — open it in GTKWave",
        vcd.len(),
        out.waveforms.len()
    );
}
