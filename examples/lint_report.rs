//! Run the full `parsim-lint` suite over the bundled benchmark and every
//! synthetic generator, then showcase what the diagnostics look like on
//! circuits that are deliberately broken.
//!
//! ```text
//! cargo run --example lint_report
//! ```
//!
//! The first section doubles as a regression gate: every circuit this
//! workspace generates must come out of the default linter clean.

use parsim::netlist::generate::RandomDagConfig;
use parsim::prelude::*;

fn main() {
    let linter = Linter::with_default_passes();

    // ── 1. Everything we ship must lint clean. ────────────────────────────
    let subjects: Vec<Circuit> = vec![
        bench::c17(),
        generate::ripple_adder(8, DelayModel::Unit),
        generate::carry_select_adder(16, DelayModel::Unit),
        generate::array_multiplier(8, DelayModel::Unit),
        generate::lfsr(16, DelayModel::Unit),
        generate::shift_register(32, DelayModel::Unit),
        generate::counter(8, DelayModel::Unit),
        generate::ring(12, DelayModel::Unit),
        generate::tree(GateKind::Nand, 64, DelayModel::Unit),
        generate::mesh(8, 8, DelayModel::Unit),
        generate::decoder(4, DelayModel::Unit),
        generate::priority_encoder(8, DelayModel::Unit),
        generate::tristate_bus(6, DelayModel::Unit),
        generate::random_dag(&RandomDagConfig { gates: 400, ..Default::default() }),
    ];
    println!("default lint suite ({} passes):\n", linter.pass_names().len());
    for c in &subjects {
        let report = linter.run(&LintContext::new(c));
        println!("  {:24} {:>6} gates  {}", c.name(), c.len(), verdict(&report));
        assert!(report.is_clean(), "{} should lint clean:\n{}", c.name(), report.render_pretty());
    }

    // ── 2. What a dirty circuit looks like. ───────────────────────────────
    println!("\n=== seeded-defect showcase ===\n");
    let mut b = CircuitBuilder::new("defective");
    let a = b.input("a");
    let x = b.input("b");
    let _spare = b.input("spare"); // unused input
    let and1 = b.named_gate("and1", GateKind::And, [a, x], Delay::UNIT);
    let and2 = b.named_gate("and2", GateKind::And, [x, a], Delay::UNIT); // duplicate of and1
    let one = b.constant(true);
    let folded = b.named_gate("folded", GateKind::Not, [one], Delay::UNIT); // constant cone
    let live = b.gate(GateKind::Or, [and1, folded], Delay::UNIT);
    b.output("y", live);
    let _dead = b.named_gate("dangling", GateKind::Not, [and2], Delay::UNIT); // dead logic
    let c = b.finish().expect("structurally valid, if sloppy");
    let report = linter.run(&LintContext::new(&c));
    println!("{}", report.render_pretty());
    println!("machine-readable:\n{}", report.render_machine());

    // ── 3. Partition-quality lints (§III: balance vs. cut). ───────────────
    println!("=== partition-quality showcase ===\n");
    // Odd width, so index-alternating blocks cut both mesh directions.
    let c = generate::mesh(7, 7, DelayModel::Unit);
    let w = GateWeights::uniform(c.len());
    // Alternating blocks: perfectly balanced, catastrophically cut.
    let striped = Partition::new(2, (0..c.len()).map(|i| i % 2).collect()).unwrap();
    // One overstuffed block: barely cut, badly imbalanced.
    let skewed =
        Partition::new(2, (0..c.len()).map(|i| usize::from(i >= c.len() - 4)).collect()).unwrap();
    for (label, p) in [("striped", &striped), ("skewed", &skewed)] {
        let report = linter.run(&LintContext::new(&c).with_partition(p, &w));
        println!("{} / {label}:", c.name());
        println!("{}", report.render_pretty());
    }

    // ── 4. Structural diagnostics at build time. ──────────────────────────
    println!("=== build-time showcase ===\n");
    let mut b = CircuitBuilder::new("ring_oscillator");
    let en = b.input("en");
    let loop_back = b.declare("loop_back");
    let n1 = b.named_gate("n1", GateKind::Nand, [en, loop_back], Delay::UNIT);
    let n2 = b.named_gate("n2", GateKind::Not, [n1], Delay::UNIT);
    b.define(loop_back, GateKind::Not, [n2], Delay::UNIT);
    b.output("osc", loop_back);
    match check_build(b) {
        Ok(_) => unreachable!("a ring oscillator is a combinational cycle"),
        Err(report) => println!("{}", report.render_pretty()),
    }

    println!("all showcase sections rendered; every shipped circuit lints clean.");
}

fn verdict(report: &LintReport) -> &'static str {
    if report.is_clean() {
        "clean"
    } else {
        "DIRTY"
    }
}
