//! Kernel shootout: which synchronization discipline wins on *your*
//! circuit?
//!
//! ```sh
//! cargo run --release --example kernel_shootout -- [gates] [processors]
//! ```
//!
//! Sweeps the three parallel disciplines (synchronous, conservative,
//! optimistic) over one circuit on the virtual multiprocessor and prints a
//! ranked table of modeled speedups with the §V-style protocol diagnostics
//! (null-message ratio, rollback efficiency, barrier count).

use parsim::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let gates: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4000);
    let processors: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);

    let circuit = generate::random_dag(&generate::RandomDagConfig {
        gates,
        inputs: 64,
        seq_fraction: 0.1,
        delays: DelayModel::Uniform { min: 1, max: 8, seed: 1 },
        seed: 1,
        ..Default::default()
    });
    println!("circuit: {} | {}", circuit, circuit.stats());
    println!("machine: {processors} modeled shared-memory processors\n");

    let weights = GateWeights::uniform(circuit.len());
    let partition = FiducciaMattheyses::default().partition(&circuit, processors, &weights);
    println!("partition: {}\n", partition.quality(&circuit, &weights));

    let machine = MachineConfig::shared_memory(processors);
    let stimulus = Stimulus::random(99, 25).with_clock(10);
    let until = VirtualTime::new(2_000);

    let kernels: Vec<Box<dyn Simulator<Bit>>> = vec![
        Box::new(SyncSimulator::new(partition.clone(), machine)),
        Box::new(ConservativeSimulator::new(partition.clone(), machine)),
        Box::new(
            ConservativeSimulator::new(partition.clone(), machine)
                .with_strategy(DeadlockStrategy::DetectAndRecover),
        ),
        Box::new(
            TimeWarpSimulator::new(partition.clone(), machine)
                .with_cancellation(Cancellation::Aggressive)
                .with_window(16),
        ),
        Box::new(TimeWarpSimulator::new(partition.clone(), machine)),
        Box::new(BtbSimulator::new(partition, machine)),
    ];

    let reference = SequentialSimulator::<Bit>::new().run(&circuit, &stimulus, until);

    let mut rows: Vec<(String, f64, String)> = Vec::new();
    for kernel in kernels {
        let out = kernel.run(&circuit, &stimulus, until);
        assert_eq!(
            out.divergence_from(&reference),
            None,
            "{} produced different results",
            kernel.name()
        );
        let speedup = out.stats.modeled_speedup().unwrap_or(0.0);
        let diag = diagnostics(&out.stats);
        rows.push((kernel.name(), speedup, diag));
    }
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("speedups are finite"));

    println!("{:<38} {:>8}  diagnostics", "kernel", "speedup");
    println!("{}", "-".repeat(78));
    for (name, speedup, diag) in rows {
        println!("{name:<38} {speedup:>7.2}x  {diag}");
    }
    println!("\n(all kernels produced identical logical results)");
}

fn diagnostics(s: &SimStats) -> String {
    let mut parts = Vec::new();
    if s.barriers > 0 {
        parts.push(format!("{} barriers", s.barriers));
    }
    if s.null_messages > 0 {
        let ratio = s.null_messages as f64 / (s.null_messages + s.messages_sent).max(1) as f64;
        parts.push(format!("null ratio {:.0}%", ratio * 100.0));
    }
    if s.gvt_rounds > 0 && s.rollbacks == 0 && s.null_messages == 0 && s.barriers == 0 {
        parts.push(format!("{} deadlock recoveries", s.gvt_rounds));
    }
    if s.rollbacks > 0 {
        parts.push(format!("{} rollbacks, efficiency {:.0}%", s.rollbacks, s.efficiency() * 100.0));
    }
    if parts.is_empty() {
        parts.push(format!("{} messages", s.messages_sent));
    }
    parts.join(", ")
}
