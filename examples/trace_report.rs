//! Trace report: instrument a run, read the story back out.
//!
//! ```sh
//! cargo run --release --example trace_report -- [out_dir]
//! ```
//!
//! Attaches a [`Probe`] to four kernels — the sequential reference, the
//! modeled synchronous kernel, conservative Chandy–Misra–Bryant and
//! optimistic Time Warp — on ISCAS-85 c17 and a 16-bit LFSR, prints each
//! run's human-readable report (per-processor utilization sparklines,
//! hottest LPs, null-message channels, rollback cascades, GVT trajectory)
//! and exports Chrome/Perfetto `trace_event` JSON plus CSV for every run
//! into `out_dir` (default `target/trace_report/`). Open the `.json` files
//! at <https://ui.perfetto.dev>.

use parsim::prelude::*;

/// One instrumented run: prints the report, writes the exports, and returns
/// the trace for any extra analysis.
fn instrumented(
    out_dir: &std::path::Path,
    tag: &str,
    kernel: &dyn Simulator<Bit>,
    probe: &Probe,
    circuit: &Circuit,
    stimulus: &Stimulus,
    until: VirtualTime,
) -> Trace {
    let out = kernel.run(circuit, stimulus, until);
    let trace = probe.take_trace();
    let snapshot = probe.metrics().map(Metrics::snapshot);
    println!("{}", run_report(&format!("{tag} on {}", circuit.name()), &trace, snapshot.as_ref()));
    println!(
        "stats: {} events, {} evals, {} nulls, {} rollbacks\n",
        out.stats.events_processed,
        out.stats.gate_evaluations,
        out.stats.null_messages,
        out.stats.rollbacks
    );

    let json_path = out_dir.join(format!("{tag}.perfetto.json"));
    std::fs::write(&json_path, to_perfetto_json(&trace)).expect("write perfetto json");
    let csv_path = out_dir.join(format!("{tag}.csv"));
    std::fs::write(&csv_path, to_csv(&trace)).expect("write trace csv");
    println!("wrote {} and {}\n", json_path.display(), csv_path.display());
    trace
}

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .map_or_else(|| std::path::PathBuf::from("target/trace_report"), std::path::PathBuf::from);
    std::fs::create_dir_all(&out_dir).expect("create output directory");

    let processors = 4;
    let machine = MachineConfig::shared_memory(processors);

    // --- ISCAS-85 c17: small enough to read every record. -----------------
    let c17 = bench::c17();
    let stim = Stimulus::random(7, 20);
    let until = VirtualTime::new(200);
    let weights = GateWeights::uniform(c17.len());
    let part = FiducciaMattheyses::default().partition(&c17, 2, &weights);

    let probe = Probe::enabled();
    instrumented(
        &out_dir,
        "c17_sequential",
        &SequentialSimulator::<Bit>::new().with_probe(probe.clone()),
        &probe,
        &c17,
        &stim,
        until,
    );

    let probe = Probe::enabled();
    let trace = instrumented(
        &out_dir,
        "c17_conservative",
        &ConservativeSimulator::<Bit>::new(part.clone(), MachineConfig::shared_memory(2))
            .with_probe(probe.clone()),
        &probe,
        &c17,
        &stim,
        until,
    );
    let nulls = parsim::trace::analysis::null_message_summary(&trace);
    println!("c17 conservative null ratio: {:.1}%\n", nulls.ratio() * 100.0);

    // --- 16-bit LFSR: feedback, real rollbacks, real barrier traffic. -----
    let lfsr = generate::lfsr(16, DelayModel::Uniform { min: 1, max: 4, seed: 11 });
    let stim = Stimulus::quiet(10_000).with_clock(5);
    let until = VirtualTime::new(500);
    let weights = GateWeights::uniform(lfsr.len());
    let part = FiducciaMattheyses::default().partition(&lfsr, processors, &weights);

    let probe = Probe::enabled();
    instrumented(
        &out_dir,
        "lfsr_synchronous",
        &SyncSimulator::<Bit>::new(part.clone(), machine).with_probe(probe.clone()),
        &probe,
        &lfsr,
        &stim,
        until,
    );

    let probe = Probe::enabled();
    let trace = instrumented(
        &out_dir,
        "lfsr_timewarp",
        &TimeWarpSimulator::<Bit>::new(part, machine).with_granularity(4).with_probe(probe.clone()),
        &probe,
        &lfsr,
        &stim,
        until,
    );
    let rb = parsim::trace::analysis::rollback_summary(&trace, 1_000);
    println!(
        "lfsr time-warp rollbacks: {} ({} events undone, longest cascade {})",
        rb.rollbacks,
        rb.events_undone,
        rb.longest_cascade()
    );
}
