//! Partition explorer: the §III trade-off between load balance and cut
//! size, measured end to end.
//!
//! ```sh
//! cargo run --release --example partition_explorer -- [circuit]
//! ```
//!
//! `circuit` is one of `multiplier`, `mesh`, `dag` (default), or a path to
//! an ISCAS `.bench` file. Every partitioning algorithm in the library is
//! scored twice: statically (cut size / balance) and dynamically (modeled
//! speedup of the synchronous kernel using that partition) — including the
//! pre-simulation activity-weighted variant of each.

use parsim::prelude::*;

fn load_circuit(arg: Option<String>) -> Circuit {
    match arg.as_deref() {
        None | Some("dag") => generate::random_dag(&generate::RandomDagConfig {
            gates: 3000,
            inputs: 48,
            seq_fraction: 0.08,
            ..Default::default()
        }),
        Some("multiplier") => generate::array_multiplier(16, DelayModel::Unit),
        Some("mesh") => generate::mesh(40, 40, DelayModel::Unit),
        Some(path) => {
            let text =
                std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
            bench::parse(path, &text, DelayModel::Unit)
                .unwrap_or_else(|e| panic!("cannot parse {path}: {e}"))
        }
    }
}

fn main() {
    let circuit = load_circuit(std::env::args().nth(1));
    let processors = 8;
    println!("circuit: {} | {}\n", circuit, circuit.stats());

    let stimulus = Stimulus::random(21, 20).with_clock(8);
    let until = VirtualTime::new(1_500);
    let machine = MachineConfig::shared_memory(processors);

    // Pre-simulation (§III): measure evaluation frequencies over a 10% window.
    let profile = pre_simulate(&circuit, &stimulus, VirtualTime::new(150));
    let uniform = GateWeights::uniform(circuit.len());
    let weighted = GateWeights::from_counts(profile.counts().to_vec());
    println!(
        "pre-simulation: {} evaluations over {} ticks (activity level {:.3})\n",
        profile.total(),
        profile.window(),
        profile.activity_level(&circuit)
    );

    println!(
        "{:<22} {:<9} {:>9} {:>8} {:>9}",
        "partitioner", "weights", "cut edges", "balance", "speedup"
    );
    println!("{}", "-".repeat(62));

    for p in all_partitioners(7) {
        for (label, weights) in [("uniform", &uniform), ("presim", &weighted)] {
            let part = p.partition(&circuit, processors, weights);
            let q = part.quality(&circuit, weights);
            let out = SyncSimulator::<Bit>::new(part, machine)
                .with_observe(Observe::Nothing)
                .run(&circuit, &stimulus, until);
            println!(
                "{:<22} {:<9} {:>9} {:>8.3} {:>8.2}x",
                p.name(),
                label,
                q.cut_edges,
                q.max_load_ratio,
                out.stats.modeled_speedup().unwrap_or(0.0)
            );
        }
    }
    println!(
        "\n(balance = heaviest block / mean block load; speedup = modeled, synchronous kernel)"
    );
}
