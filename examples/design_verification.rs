//! Design verification: catch a real bug with waveform-level simulation.
//!
//! ```sh
//! cargo run --release --example design_verification
//! ```
//!
//! The motivating workload of the paper's introduction: logic simulation
//! "has taken on an essential role in the verification of designs prior to
//! fabrication". We build a correct 8-bit ripple adder and a subtly broken
//! variant (one carry gate mis-wired), drive both with the same vectors on
//! a parallel kernel, and let waveform comparison localize the divergence —
//! then cross-check the correct design against a software model.

use parsim::prelude::*;

/// An 8-bit ripple adder with bit 4's carry OR gate mis-wired (it drops the
/// propagate term), the kind of wiring slip netlist review misses.
fn broken_adder() -> Circuit {
    let mut b = CircuitBuilder::new("broken_adder");
    let a: Vec<GateId> = (0..8).map(|i| b.input(format!("a{i}"))).collect();
    let x: Vec<GateId> = (0..8).map(|i| b.input(format!("b{i}"))).collect();
    let mut carry = b.input("cin");
    for i in 0..8 {
        let axb = b.gate(GateKind::Xor, [a[i], x[i]], Delay::UNIT);
        let sum = b.gate(GateKind::Xor, [axb, carry], Delay::UNIT);
        b.output(format!("s{i}"), sum);
        let g1 = b.gate(GateKind::And, [a[i], x[i]], Delay::UNIT);
        let g2 = b.gate(GateKind::And, [axb, carry], Delay::UNIT);
        carry = if i == 4 {
            // BUG: generate-only carry; the propagate path is dropped.
            b.gate(GateKind::Buf, [g1], Delay::UNIT)
        } else {
            b.gate(GateKind::Or, [g1, g2], Delay::UNIT)
        };
    }
    b.output("cout", carry);
    b.finish().expect("structurally valid (the bug is functional)")
}

fn run(circuit: &Circuit, stimulus: &Stimulus, until: VirtualTime) -> SimOutcome<Logic4> {
    let weights = GateWeights::uniform(circuit.len());
    let partition = FiducciaMattheyses::default().partition(circuit, 4, &weights);
    SyncSimulator::<Logic4>::new(partition, MachineConfig::shared_memory(4))
        .with_observe(Observe::Outputs)
        .run(circuit, stimulus, until)
}

fn main() {
    let good = generate::ripple_adder(8, DelayModel::Unit);
    let bad = broken_adder();

    // 300 random operand pairs, 40 ticks of settle time each.
    let stimulus = Stimulus::random(7, 40);
    let until = VirtualTime::new(300 * 40);

    let good_out = run(&good, &stimulus, until);
    let bad_out = run(&bad, &stimulus, until);

    // Compare output waveforms net by net.
    let mut first_diff: Option<(String, VirtualTime)> = None;
    for (&g_id, g_wave) in &good_out.waveforms {
        let name = good.gate(g_id).name().expect("outputs are named").to_owned();
        let b_id = bad.find(&name).expect("same interface");
        let b_wave = &bad_out.waveforms[&b_id];
        if g_wave != b_wave {
            // Locate the earliest divergence point.
            let t = g_wave
                .transitions()
                .iter()
                .chain(b_wave.transitions())
                .map(|&(t, _)| t)
                .filter(|&t| g_wave.value_at(t) != b_wave.value_at(t))
                .min()
                .expect("waveforms differ somewhere");
            if first_diff.as_ref().is_none_or(|&(_, bt)| t < bt) {
                first_diff = Some((name.clone(), t));
            }
            println!("MISMATCH on {name}: first differs at t={t}");
        }
    }

    match first_diff {
        Some((net, t)) => {
            println!("\nverification FAILED: earliest divergence on `{net}` at t={t}");
            println!("(the injected bug breaks carry propagation out of bit 4,");
            println!(" so s5..s7 and cout corrupt whenever a carry must ripple past it)");
        }
        None => panic!("the injected bug should have been caught"),
    }

    // And the golden model check: the good adder really adds.
    let vectors = vec![
        (vec![true; 8], vec![false; 8], false), // 255 + 0
        (vec![true; 8], vec![true; 8], true),   // 255 + 255 + 1
        (
            vec![true, false, true, false, false, false, false, false], // 5
            vec![true, true, false, false, false, false, false, false], // 3
            false,
        ),
    ];
    for (a, bv, cin) in vectors {
        let mut inputs: Vec<bool> = Vec::new();
        inputs.extend(&a);
        inputs.extend(&bv);
        inputs.push(cin);
        let stim = Stimulus::vectors(64, vec![inputs]);
        let out = run(&good, &stim, VirtualTime::new(64));
        let to_u32 =
            |bits: &[bool]| bits.iter().enumerate().map(|(i, &b)| (b as u32) << i).sum::<u32>();
        let expected = to_u32(&a) + to_u32(&bv) + cin as u32;
        let mut got = 0u32;
        for i in 0..8 {
            if out.value_by_name(&good, &format!("s{i}")) == Some(Logic4::One) {
                got |= 1 << i;
            }
        }
        if out.value_by_name(&good, "cout") == Some(Logic4::One) {
            got |= 1 << 8;
        }
        assert_eq!(got, expected, "adder arithmetic check");
        println!("golden check: {} + {} + {} = {got} ✓", to_u32(&a), to_u32(&bv), cin as u32);
    }
}
